//! [`PreparedDataset`]: preprocess a dataset once, answer many queries.
//!
//! `MaxRsEngine::run` is stateless: every call over a dataset that exceeds
//! the memory budget pays the full `O((N/B) log_{M/B}(N/B))` external sort
//! before the distribution sweep can start.  Workloads that ask several
//! questions of the *same* data — MaxRS at a few rectangle sizes, a top-k
//! follow-up, a MinRS sanity check — repeat that sort for no reason: the
//! sweep only needs its rectangles in center-x order, transformed rectangles
//! are centered at their objects, and the objects' x-order does not depend on
//! the query at all.
//!
//! [`MaxRsEngine::prepare`] therefore runs the transform-independent part of
//! the pipeline once — load + external x-sort of the object file — and
//! retains the sorted file.  [`PreparedDataset::run`] answers any
//! [`Query`] variant against the retained file with the sort-free pipeline
//! (a presorted [`SweepPass`](crate::sweep::SweepPass)): each query costs
//! only the `O(N/B)` transform scan plus the sweep, and a whole *batch* of
//! queries shares even those across queries of one rectangle size
//! ([`PreparedDataset::run_batch`], see [`crate::batch`]).  Answers are
//! bit-identical to single-shot [`MaxRsEngine::run`] calls — which since
//! this layer exists simply route through a throwaway prepared dataset —
//! because canonical max-regions (see [`crate::sweep`]) make every answer
//! independent of how the sweep's input was obtained.
//!
//! The sorted file is owned RAII-style: dropping the `PreparedDataset`
//! deletes its blocks, so a long-running engine that prepares many datasets
//! never leaks disk space (`disk_blocks()` returns to its baseline — a test
//! asserts exactly that).

use maxrs_em::{EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::WeightedPoint;

use crate::batch::{run_batch_external, QueryBatch};
use crate::engine::{answer_in_memory, EngineOptions, ExecutionStrategy, MaxRsEngine};
use crate::error::Result;
use crate::exact::{load_objects, sort_objects_by_x};
use crate::query::{Query, QueryRun};
use crate::records::ObjectRecord;

/// The context a prepared dataset runs against: its own (created by
/// [`MaxRsEngine::prepare`]) or a caller-owned one (borrowed by
/// [`MaxRsEngine::prepare_file`]).
#[derive(Debug)]
enum CtxHandle<'a> {
    Owned(Box<EmContext>),
    Borrowed(&'a EmContext),
}

impl CtxHandle<'_> {
    fn get(&self) -> &EmContext {
        match self {
            CtxHandle::Owned(ctx) => ctx,
            CtxHandle::Borrowed(ctx) => ctx,
        }
    }
}

/// Where the prepared data lives.
#[derive(Debug)]
enum Source<'a> {
    /// The dataset fits the memory budget: kept as a plain vector, queries
    /// are answered by the in-memory reference algorithms at zero I/O.
    Memory(Vec<WeightedPoint>),
    /// External dataset: the object file sorted by x, retained across
    /// queries.  `sorted` is `Some` until `Drop` takes it.
    External {
        ctx: CtxHandle<'a>,
        sorted: Option<TupleFile<ObjectRecord>>,
    },
}

/// A dataset preprocessed for repeated queries: the external x-sort is paid
/// once at construction, then every [`run`](PreparedDataset::run) — any
/// [`Query`] variant, any rectangle size — skips it.
///
/// Created by [`MaxRsEngine::prepare`] (own context, configured by the
/// engine's [`EngineOptions::em_config`]) or
/// [`MaxRsEngine::prepare_file`] (files inside a caller-owned context).
/// Dropping the dataset deletes its retained file (RAII).
#[derive(Debug)]
pub struct PreparedDataset<'a> {
    opts: EngineOptions,
    source: Source<'a>,
    len: u64,
    prepare_io: IoSnapshot,
}

impl MaxRsEngine {
    /// Preprocesses a dataset for repeated queries: strategy selection plus —
    /// for datasets exceeding the memory budget — the one-time load and
    /// external x-sort into a fresh context with the engine's configuration.
    ///
    /// See the [`PreparedDataset`] docs and the crate README's cookbook for
    /// when this pays off: from the second query on, each
    /// [`PreparedDataset::run`] saves the entire `O((N/B) log_{M/B}(N/B))`
    /// sort that a stateless [`run`](MaxRsEngine::run) would repeat.
    ///
    /// ```
    /// use maxrs_core::{MaxRsEngine, Query};
    /// use maxrs_geometry::{RectSize, WeightedPoint};
    ///
    /// let cafes = vec![
    ///     WeightedPoint::unit(1.0, 1.0),
    ///     WeightedPoint::unit(1.4, 1.2),
    ///     WeightedPoint::unit(6.0, 6.0),
    /// ];
    /// let engine = MaxRsEngine::new();
    /// let prepared = engine.prepare(&cafes).unwrap();
    ///
    /// // Many queries, one preprocessing pass:
    /// let best = prepared.run(&Query::max_rs(RectSize::square(2.0))).unwrap();
    /// let top2 = prepared.run(&Query::top_k(RectSize::square(2.0), 2)).unwrap();
    /// assert_eq!(best.answer.best_weight(), 2.0);
    /// assert_eq!(top2.answer.placements().unwrap().len(), 2);
    ///
    /// // Identical answers to the stateless engine call:
    /// let single = engine.run(&cafes, &Query::max_rs(RectSize::square(2.0))).unwrap();
    /// assert_eq!(single.answer, best.answer);
    /// ```
    pub fn prepare(&self, objects: &[WeightedPoint]) -> Result<PreparedDataset<'static>> {
        let opts = *self.options();
        let (strategy, _) = self.select_strategy(objects.len() as u64);
        if strategy == ExecutionStrategy::InMemory {
            self.guard_in_memory_capacity(objects.len() as u64, opts.em_config)?;
            return Ok(PreparedDataset {
                opts,
                source: Source::Memory(objects.to_vec()),
                len: objects.len() as u64,
                prepare_io: IoSnapshot::default(),
            });
        }
        let ctx = Box::new(EmContext::new(opts.em_config));
        let file = load_objects(&ctx, objects)?;
        // Loading is excluded from the reported preprocessing cost, exactly
        // as single-shot runs exclude it from theirs.
        let before = ctx.stats();
        let sorted = sort_objects_by_x(&ctx, &file)?;
        ctx.delete_file(file)?;
        // Materialize the sorted file: its dirty blocks belong to the
        // one-time preprocessing cost, not to whichever query happens to
        // evict them first.
        ctx.flush_file(&sorted)?;
        let prepare_io = ctx.stats().since(&before);
        Ok(PreparedDataset {
            opts,
            source: Source::External {
                ctx: CtxHandle::Owned(ctx),
                sorted: Some(sorted),
            },
            len: objects.len() as u64,
            prepare_io,
        })
    }

    /// [`prepare`](MaxRsEngine::prepare) for an object file already stored in
    /// a caller-owned context: the sorted copy lives in `ctx` (the input file
    /// is left untouched) and is deleted when the returned dataset drops.
    ///
    /// The in-memory cutoff and worker cap come from `ctx`'s configuration,
    /// exactly as in [`run_file`](MaxRsEngine::run_file); for a dataset under
    /// the memory budget the preparation is one counted scan of the file.
    pub fn prepare_file<'a>(
        &self,
        ctx: &'a EmContext,
        objects: &TupleFile<ObjectRecord>,
    ) -> Result<PreparedDataset<'a>> {
        let opts = *self.options();
        let (strategy, _) = self.select_for(objects.len(), ctx.config());
        let before = ctx.stats();
        if strategy == ExecutionStrategy::InMemory {
            self.guard_in_memory_capacity(objects.len(), ctx.config())?;
            let records = ctx.read_all(objects)?;
            let points: Vec<WeightedPoint> = records.iter().map(|r| r.0).collect();
            return Ok(PreparedDataset {
                opts,
                len: objects.len(),
                source: Source::Memory(points),
                prepare_io: ctx.stats().since(&before),
            });
        }
        let sorted = sort_objects_by_x(ctx, objects)?;
        // As in `prepare`: the sorted file's dirty blocks are part of the
        // one-time cost, not of the first query that evicts them.  Only this
        // file is flushed — a shared context's unrelated cached state (and
        // its measurements) stays untouched.
        ctx.flush_file(&sorted)?;
        Ok(PreparedDataset {
            opts,
            len: objects.len(),
            source: Source::External {
                ctx: CtxHandle::Borrowed(ctx),
                sorted: Some(sorted),
            },
            prepare_io: ctx.stats().since(&before),
        })
    }
}

impl PreparedDataset<'static> {
    /// Builds a prepared dataset from an in-memory object vector — the
    /// snapshot path of [`DeltaDataset`](crate::DeltaDataset) for nets under
    /// the memory budget.  Callers are responsible for the capacity guard.
    pub(crate) fn from_memory(opts: EngineOptions, objects: Vec<WeightedPoint>) -> Self {
        let len = objects.len() as u64;
        PreparedDataset {
            opts,
            source: Source::Memory(objects),
            len,
            prepare_io: IoSnapshot::default(),
        }
    }

    /// Builds a prepared dataset around an **already x-sorted** object file
    /// in a context it takes ownership of — the sort-free snapshot path of
    /// [`DeltaDataset`](crate::DeltaDataset): the delta merge preserves
    /// x-order, so no new sort is ever paid.
    pub(crate) fn from_sorted_owned(
        opts: EngineOptions,
        ctx: Box<EmContext>,
        sorted: TupleFile<ObjectRecord>,
        prepare_io: IoSnapshot,
    ) -> Self {
        let len = sorted.len();
        PreparedDataset {
            opts,
            len,
            source: Source::External {
                ctx: CtxHandle::Owned(ctx),
                sorted: Some(sorted),
            },
            prepare_io,
        }
    }
}

impl PreparedDataset<'_> {
    /// Number of objects in the prepared dataset.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The context and retained x-sorted object file of an external dataset,
    /// or `None` for an in-memory one.  The sharded layer ([`crate::shard`])
    /// drives its per-shard passes through this instead of `run_planned`, so
    /// that one global sweep can span every shard's file.
    pub fn external_parts(&self) -> Option<(&EmContext, &TupleFile<ObjectRecord>)> {
        match &self.source {
            Source::Memory(_) => None,
            Source::External { ctx, sorted } => {
                Some((ctx.get(), sorted.as_ref().expect("sorted file taken")))
            }
        }
    }

    /// `true` when queries run through the external-memory pipeline (a sorted
    /// object file is retained); `false` when the dataset fits the memory
    /// budget and queries are answered in memory at zero I/O.
    pub fn is_external(&self) -> bool {
        matches!(self.source, Source::External { .. })
    }

    /// Blocks transferred by the one-time preprocessing (the external x-sort,
    /// or the loading scan of [`prepare_file`](MaxRsEngine::prepare_file) for
    /// in-memory datasets).  Zero for [`prepare`](MaxRsEngine::prepare) of an
    /// in-memory dataset.
    pub fn prepare_io(&self) -> IoSnapshot {
        self.prepare_io
    }

    /// The short backend name of the context the dataset lives in ("sim",
    /// "fs"), or `None` for a purely in-memory dataset.
    pub fn backend_name(&self) -> Option<&'static str> {
        match &self.source {
            Source::Memory(_) => None,
            Source::External { ctx, .. } => Some(ctx.get().backend_name()),
        }
    }

    /// Estimated bytes this dataset keeps resident while it lives: the
    /// in-memory object vector, or the retained sorted file's blocks for an
    /// external dataset.  This is what a serving-layer cache (e.g.
    /// `maxrs-serve`'s `DatasetRegistry`) charges against its memory budget —
    /// an estimate of the *retained* footprint, not of the transient working
    /// memory a query borrows from the buffer pool.
    pub fn resident_bytes(&self) -> u64 {
        match &self.source {
            Source::Memory(objects) => {
                (objects.len() * std::mem::size_of::<WeightedPoint>()) as u64
            }
            Source::External { ctx, .. } => {
                let config = ctx.get().config();
                config.blocks_for::<ObjectRecord>(self.len) * config.block_size as u64
            }
        }
    }

    /// Answers any [`Query`] variant against the prepared data.
    ///
    /// External datasets pay the `O(N/B)` transform scan plus the
    /// distribution sweep — never the external sort, which
    /// [`prepare`](MaxRsEngine::prepare) already paid (a regression test
    /// asserts a second `run` does zero sort I/O).  The reported I/O is the
    /// delta across this query only.  Answers are bit-identical to
    /// single-shot [`MaxRsEngine::run`] calls with the same options.
    ///
    /// A single run is exactly a [`run_batch`](PreparedDataset::run_batch) of
    /// one query, so the per-query and batched paths can never diverge.
    pub fn run(&self, query: &Query) -> Result<QueryRun> {
        let mut runs = self.run_batch(std::slice::from_ref(query))?;
        Ok(runs.pop().expect("one run per query"))
    }

    /// Answers a whole batch of queries in shared sweep passes: queries are
    /// planned into sweep groups ([`QueryBatch`]) so each distinct
    /// transform/sweep runs once, and independent groups execute concurrently
    /// on the worker pool.
    ///
    /// Runs come back in query order with answers bit-identical to per-query
    /// [`run`](PreparedDataset::run) calls for integer-valued weights (with
    /// arbitrary floats, concurrent group execution carries the same
    /// last-bit association caveat as strategy selection — see
    /// [`crate::batch`]); each group's shared pass I/O is attributed to the
    /// group's first query, so the runs' I/O sums to the batch's true total
    /// (see [`crate::batch`], "I/O attribution").
    ///
    /// ```
    /// use maxrs_core::{MaxRsEngine, Query};
    /// use maxrs_geometry::{RectSize, WeightedPoint};
    ///
    /// let cafes = vec![
    ///     WeightedPoint::unit(1.0, 1.0),
    ///     WeightedPoint::unit(1.4, 1.2),
    ///     WeightedPoint::unit(6.0, 6.0),
    /// ];
    /// let prepared = MaxRsEngine::new().prepare(&cafes).unwrap();
    /// let size = RectSize::square(2.0);
    ///
    /// // One shared pass answers all three (same rectangle size):
    /// let runs = prepared
    ///     .run_batch(&[
    ///         Query::max_rs(size),
    ///         Query::top_k(size, 2),
    ///         Query::approx_max_crs(2.0),
    ///     ])
    ///     .unwrap();
    /// assert_eq!(runs.len(), 3);
    /// assert_eq!(runs[0].answer.best_weight(), 2.0);
    /// assert_eq!(runs[1].answer.placements().unwrap().len(), 2);
    /// ```
    pub fn run_batch(&self, queries: &[Query]) -> Result<Vec<QueryRun>> {
        self.run_planned(&QueryBatch::new(queries)?)
    }

    /// [`run_batch`](PreparedDataset::run_batch) for a pre-planned
    /// [`QueryBatch`] — lets callers plan once and execute the same batch
    /// repeatedly (or inspect [`QueryBatch::num_groups`] before running).
    pub fn run_planned(&self, batch: &QueryBatch) -> Result<Vec<QueryRun>> {
        match &self.source {
            Source::Memory(objects) => Ok(batch
                .queries()
                .iter()
                .map(|query| QueryRun {
                    answer: answer_in_memory(objects, query),
                    strategy: ExecutionStrategy::InMemory,
                    workers: 1,
                    io: IoSnapshot::default(),
                })
                .collect()),
            Source::External { ctx, sorted } => {
                let ctx = ctx.get();
                let sorted = sorted.as_ref().expect("sorted file present until drop");
                let engine = MaxRsEngine::with_options(self.opts);
                let (strategy, workers) = engine.select_for(sorted.len(), ctx.config());
                // An external source always selects an external strategy
                // (same n, same config as at prepare time); the guard keeps
                // the run well-defined even if options were somehow forced
                // inconsistently.
                let strategy = if strategy == ExecutionStrategy::InMemory {
                    ExecutionStrategy::ExternalSequential
                } else {
                    strategy
                };
                run_batch_external(ctx, sorted, batch, strategy, workers, &self.opts.exact)
            }
        }
    }
}

impl Drop for PreparedDataset<'_> {
    fn drop(&mut self) {
        if let Source::External { ctx, sorted } = &mut self.source {
            if let Some(file) = sorted.take() {
                // Deleting can only fail if the file is already gone; either
                // way its blocks are no longer allocated.
                let _ = ctx.get().delete_file(file);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::exact::ExactMaxRsOptions;
    use maxrs_em::EmConfig;
    use maxrs_geometry::{Rect, RectSize};

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 4.0).floor(),
                )
            })
            .collect()
    }

    fn external_engine() -> MaxRsEngine {
        MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 32 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                memory_rects: Some(64),
                parallelism: 1,
                ..Default::default()
            },
            force_strategy: None,
        })
    }

    #[test]
    fn small_dataset_prepares_in_memory() {
        let engine = MaxRsEngine::new();
        let objects = pseudo_random_objects(50, 3, 100.0);
        let prepared = engine.prepare(&objects).unwrap();
        assert!(!prepared.is_external());
        assert_eq!(prepared.len(), 50);
        assert_eq!(prepared.prepare_io().total(), 0);
        assert_eq!(prepared.backend_name(), None);
        let run = prepared
            .run(&Query::max_rs(RectSize::square(10.0)))
            .unwrap();
        assert_eq!(run.strategy, ExecutionStrategy::InMemory);
        assert_eq!(run.io.total(), 0);
    }

    #[test]
    fn large_dataset_prepares_externally_and_answers_all_variants() {
        let engine = external_engine();
        let objects = pseudo_random_objects(800, 11, 1000.0);
        let prepared = engine.prepare(&objects).unwrap();
        assert!(prepared.is_external());
        assert!(prepared.prepare_io().total() > 0, "the x-sort does I/O");
        assert!(prepared.backend_name().is_some());

        let size = RectSize::square(80.0);
        let domain = Rect::new(100.0, 900.0, 100.0, 900.0);
        for query in [
            Query::max_rs(size),
            Query::top_k(size, 3),
            Query::min_rs(size, domain),
            Query::approx_max_crs(80.0),
        ] {
            let prepared_run = prepared.run(&query).unwrap();
            let single = engine.run(&objects, &query).unwrap();
            assert_eq!(
                prepared_run.answer,
                single.answer,
                "{}: prepared answer diverged from single-shot",
                query.name()
            );
            assert!(prepared_run.io.total() > 0, "{}", query.name());
            assert!(
                prepared_run.io.total() < single.io.total(),
                "{}: prepared run ({}) must beat cold run ({}) by the sort",
                query.name(),
                prepared_run.io,
                single.io
            );
        }
    }

    #[test]
    fn repeated_runs_cost_the_same_io() {
        let engine = external_engine();
        let objects = pseudo_random_objects(600, 5, 500.0);
        let prepared = engine.prepare(&objects).unwrap();
        let q = Query::max_rs(RectSize::square(50.0));
        let first = prepared.run(&q).unwrap();
        let second = prepared.run(&q).unwrap();
        assert_eq!(first.answer, second.answer);
        assert!(first.io.total() > 0);
        // Buffer-pool warmth can only make later runs cheaper, never dearer:
        // no run after `prepare` ever pays the external sort again.
        assert!(
            second.io.total() <= first.io.total(),
            "second run ({}) costlier than the first ({})",
            second.io,
            first.io
        );
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let engine = MaxRsEngine::new();
        let prepared = engine.prepare(&pseudo_random_objects(10, 7, 10.0)).unwrap();
        assert!(prepared
            .run(&Query::MaxRs {
                size: RectSize {
                    width: -1.0,
                    height: 1.0
                }
            })
            .is_err());
    }
}
