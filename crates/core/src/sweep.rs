//! The **sweep kernel**: one parameterized distribution-sweep pipeline that
//! every query variant and every execution strategy instantiates.
//!
//! Historically the crate carried the pipeline four times — `exact_max_rs`
//! vs. `exact_max_rs_presorted`, `distribution_sweep` vs.
//! `distribution_sweep_presorted` — plus per-variant re-implementations in
//! the engine.  [`SweepPass`] collapses them into one parameterized object
//! with the pipeline's four stages as composable methods:
//!
//! 1. **transform** — stream the object file into query-sized rectangles
//!    ([`SweepPass::transform`]), optionally scaling weights (`-1` is the
//!    MinRS reduction);
//! 2. **slab partition + strip sweep** — the distribution-sweep recursion
//!    over the rectangles ([`SweepPass::sweep_rects`]), preceded by the
//!    external center-x sort exactly when the pass's [`InputOrder`] says the
//!    input needs one;
//! 3. **extract** — the best tuple of the final slab-file
//!    ([`SweepPass::extract_best`]);
//! 4. **canonicalize** — widen the winning interval back to the full
//!    arrangement cell ([`SweepPass::canonicalize`]) so every strategy and
//!    every input order reports the identical max-region.
//!
//! [`SweepPass::max_rs`] composes all four; the batched executor
//! ([`crate::batch`]) runs the stages separately so several queries can share
//! stages 1–2 of one pass.
//!
//! # Canonical max-regions
//!
//! The distribution sweep reports the same *maximum weight* as the in-memory
//! plane sweep, but its slab boundaries subdivide the x-axis more finely than
//! the rectangle-edge arrangement alone, so the winning tuple's x-interval
//! can be a strict sub-interval of the arrangement cell the in-memory sweep
//! would report.  Stage 4 therefore *widens* the winning interval back to the
//! full arrangement cell with one extra `O(N/B)` scan of the object file
//! (see [`next_breakpoint_after`]): both sweeps break ties leftmost-first and
//! agree on the winning event `y`, so after widening the external result —
//! center, weight **and** max-region — is bit-for-bit identical to
//! [`max_rs_in_memory`](crate::plane_sweep::max_rs_in_memory()).  The unified
//! query layer ([`crate::engine::MaxRsEngine::run`]) relies on this to give
//! every `Query` variant strategy-independent answers.

use maxrs_em::{external_sort_by_key, EmContext, TupleFile};
use maxrs_geometry::{Interval, Point, Rect, RectSize};

use crate::error::{CoreError, Result};
use crate::exact::ExactMaxRsOptions;
use crate::merge_sweep::{merge_sweep, merge_sweep_tree};
use crate::parallel::parallel_map;
use crate::plane_sweep::with_sweep_scratch;
use crate::records::{ObjectRecord, RectRecord, SlabTuple};
use crate::result::MaxRsResult;
use crate::slab::{compute_partition, distribute, BoundarySource};

/// Whether a pass's object file is already in the order the sweep needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputOrder {
    /// Arbitrary order: the kernel pays the
    /// `O((N/B) log_{M/B}(N/B))` external center-x sort before sweeping.
    Unsorted,
    /// Already sorted by object x (see
    /// [`sort_objects_by_x`](crate::exact::sort_objects_by_x)); transformed
    /// rectangles are centered at their objects, so the rectangle file is in
    /// center-x order for *every* query size and the sort is skipped.  This
    /// is the fast path of [`PreparedDataset`](crate::PreparedDataset).
    PresortedByX,
}

/// One parameterized distribution-sweep pass: the sweep kernel.
///
/// A pass captures everything the pipeline varies over — the EM context, the
/// tuning [`ExactMaxRsOptions`], the input [`InputOrder`], a weight scale
/// (`-1.0` turns MaxRS into MinRS) and a root slab (the query domain's
/// x-interval for MinRS, unbounded otherwise) — so callers state *what* to
/// sweep and never re-implement *how*:
///
/// ```
/// use maxrs_core::{load_objects, ExactMaxRsOptions, SweepPass};
/// use maxrs_em::{EmConfig, EmContext};
/// use maxrs_geometry::{RectSize, WeightedPoint};
///
/// let ctx = EmContext::new(EmConfig::paper_synthetic());
/// let objects = load_objects(
///     &ctx,
///     &[
///         WeightedPoint::unit(1.0, 1.0),
///         WeightedPoint::unit(1.5, 1.2),
///         WeightedPoint::unit(9.0, 9.0),
///     ],
/// )
/// .unwrap();
///
/// let pass = SweepPass::new(&ctx, &ExactMaxRsOptions::default());
/// let best = pass.max_rs(&objects, RectSize::square(2.0)).unwrap();
/// assert_eq!(best.total_weight, 2.0);
/// # ctx.delete_file(objects).unwrap();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepPass<'a> {
    ctx: &'a EmContext,
    opts: ExactMaxRsOptions,
    order: InputOrder,
    weight_scale: f64,
    root: Interval,
}

impl<'a> SweepPass<'a> {
    /// A pass over an arbitrarily ordered object file: identity weights,
    /// unbounded root slab — the classic ExactMaxRS configuration.
    pub fn new(ctx: &'a EmContext, opts: &ExactMaxRsOptions) -> Self {
        SweepPass {
            ctx,
            opts: *opts,
            order: InputOrder::Unsorted,
            weight_scale: 1.0,
            root: Interval::UNBOUNDED,
        }
    }

    /// A pass over an object file already sorted by x: the sort-free pipeline
    /// of [`PreparedDataset`](crate::PreparedDataset).
    pub fn presorted(ctx: &'a EmContext, opts: &ExactMaxRsOptions) -> Self {
        SweepPass {
            order: InputOrder::PresortedByX,
            ..SweepPass::new(ctx, opts)
        }
    }

    /// Sets the input order explicitly.
    pub fn with_order(mut self, order: InputOrder) -> Self {
        self.order = order;
        self
    }

    /// Multiplies every object weight by `scale` during the transform scan.
    /// `-1.0` is the MinRS reduction: the maximum of the negated instance is
    /// the negated minimum of the original one, so the unmodified pipeline
    /// answers MinRS queries.
    pub fn with_weight_scale(mut self, scale: f64) -> Self {
        self.weight_scale = scale;
        self
    }

    /// Restricts the sweep (and the canonicalization) to a root x-slab — the
    /// query domain's x-interval for MinRS.  Default: unbounded.
    pub fn with_root(mut self, root: Interval) -> Self {
        self.root = root;
        self
    }

    /// The context this pass runs against.
    pub fn ctx(&self) -> &'a EmContext {
        self.ctx
    }

    /// The tuning options of this pass.
    pub fn options(&self) -> &ExactMaxRsOptions {
        &self.opts
    }

    /// The root x-slab of this pass.
    pub fn root(&self) -> Interval {
        self.root
    }

    /// Stage 1 — streams the object file into a rectangle file of the query
    /// size, scaling weights by the pass's weight scale.  One transform-aware
    /// scan ([`EmContext::filter_map_file`]): `O(N/B)` I/Os, no intermediate
    /// staging.  The input file is left untouched.
    pub fn transform(
        &self,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
    ) -> Result<TupleFile<RectRecord>> {
        transform_to_scaled_rect_file(self.ctx, objects, size, self.weight_scale)
    }

    /// Stages 2–3 — sorts the rectangles by center x (skipped for
    /// [`InputOrder::PresortedByX`]) and runs the distribution-sweep
    /// recursion, returning the final slab-file of the pass's root slab (the
    /// y-sorted `⟨y, max-interval, sum⟩` tuples).  The input file is
    /// consumed; rectangle weights may be negative (only `WeightedPoint`
    /// insists on non-negativity).  `opts.parallelism` selects between the
    /// paper's flat sequential sweep and the parallel slab stage.
    pub fn sweep_rects(&self, rects: TupleFile<RectRecord>) -> Result<TupleFile<SlabTuple>> {
        let sorted = match self.order {
            InputOrder::Unsorted => {
                let sorted = external_sort_by_key(self.ctx, &rects, |r| r.center_x())?;
                self.ctx.delete_file(rects)?;
                sorted
            }
            InputOrder::PresortedByX => rects,
        };
        let runner = Runner {
            ctx: self.ctx,
            opts: self.opts,
            workers: self.opts.effective_parallelism(self.ctx.config()),
        };
        runner.solve(sorted, self.root, true)
    }

    /// Stages 1–3 composed: transform, then sweep.
    pub fn slab_file(
        &self,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
    ) -> Result<TupleFile<SlabTuple>> {
        let rects = self.transform(objects, size)?;
        self.sweep_rects(rects)
    }

    /// Stage 4a — scans a final slab-file for the best tuple and converts it
    /// into a (not yet canonicalized) result.
    pub fn extract_best(&self, slab_file: &TupleFile<SlabTuple>) -> Result<MaxRsResult> {
        extract_best(self.ctx, slab_file)
    }

    /// Stage 4b — widens a sweep result's max-interval to the full
    /// arrangement cell of the pass's root slab so it matches the in-memory
    /// sweep's report (module docs, "Canonical max-regions").  The winning
    /// `y`-strip and weight are already canonical; only the interval's upper
    /// bound (and with it the representative center) can sit on a slab
    /// boundary instead of a rectangle edge.
    pub fn canonicalize(
        &self,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
        result: MaxRsResult,
    ) -> Result<MaxRsResult> {
        if !result.region.x_lo.is_finite() && !result.region.x_hi.is_finite() {
            // The empty-dataset sentinel; nothing to widen.
            return Ok(result);
        }
        let x_hi = next_breakpoint_after(self.ctx, objects, size, self.root, result.region.x_lo)?;
        let x = Interval::new(result.region.x_lo, x_hi.max(result.region.x_hi));
        Ok(MaxRsResult {
            center: Point::new(x.representative(), result.center.y),
            total_weight: result.total_weight,
            region: Rect::new(x.lo, x.hi, result.region.y_lo, result.region.y_hi),
        })
    }

    /// The full pipeline: transform → (sort) → sweep → extract →
    /// canonicalize.  Returns the optimal location, the maximum range sum and
    /// the canonical max-region; all temporary files are deleted before
    /// returning and the input file is left untouched.
    pub fn max_rs(&self, objects: &TupleFile<ObjectRecord>, size: RectSize) -> Result<MaxRsResult> {
        if objects.is_empty() {
            return Ok(MaxRsResult::empty());
        }
        let slab_file = self.slab_file(objects, size)?;
        let result = self.extract_best(&slab_file)?;
        self.ctx.delete_file(slab_file)?;
        self.canonicalize(objects, size, result)
    }
}

/// Streams an object file into a rectangle file of the query size (stage 1 of
/// the kernel with identity weights) — kept as a free function for callers
/// outside the pipeline.
pub fn transform_to_rect_file(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<TupleFile<RectRecord>> {
    transform_to_scaled_rect_file(ctx, objects, size, 1.0)
}

/// [`transform_to_rect_file`] with every weight multiplied by `weight_scale`
/// during the scan (`-1.0` is the MinRS reduction).
pub fn transform_to_scaled_rect_file(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    weight_scale: f64,
) -> Result<TupleFile<RectRecord>> {
    ctx.map_file(objects, |rec: ObjectRecord| {
        RectRecord::new(rec.0.to_rect(size), weight_scale * rec.0.weight)
    })
    .map_err(CoreError::from)
}

/// The smallest x-arrangement breakpoint strictly greater than `x`: the edge
/// of a transformed rectangle (clipped to `slab`) or the slab's upper bound,
/// whichever comes first; `+∞` when nothing lies beyond `x`.
///
/// These breakpoints are exactly the leaf boundaries of the in-memory plane
/// sweep over `slab` (see [`crate::plane_sweep::plane_sweep_slab`]), computed
/// here with one
/// sequential `O(N/B)` scan of the object file instead of materializing the
/// arrangement.  Used to widen distribution-sweep max-intervals back to full
/// arrangement cells (stage 4 of the kernel).
pub fn next_breakpoint_after(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    slab: Interval,
    x: f64,
) -> Result<f64> {
    let mut best = f64::INFINITY;
    if slab.hi > x {
        best = slab.hi;
    }
    let mut reader = ctx.open_reader(objects);
    while let Some(rec) = reader.next_record()? {
        if let Some(clipped) = rec.0.to_rect(size).clip_x(&slab) {
            for edge in [clipped.x_lo, clipped.x_hi] {
                if edge > x && edge < best {
                    best = edge;
                }
            }
        }
    }
    Ok(best)
}

/// Runs the distribution-sweep recursion over an **already distributed**
/// rectangle file: the caller has cropped the rectangles to `slab` (and
/// routed away anything outside it), so no transform and no top-level sort
/// happen here.  `sorted` says whether the file is in center-x order (exact
/// boundary selection) or not (sampled boundaries, as for recursion
/// children).  This is the per-shard entry point of the sharded dataset
/// layer ([`crate::shard`]), which runs one such solve per shard and then
/// combines the shard slab-files through the same span-event MergeSweep the
/// recursion itself uses.
pub fn solve_rects(
    ctx: &EmContext,
    opts: &ExactMaxRsOptions,
    rects: TupleFile<RectRecord>,
    slab: Interval,
    sorted: bool,
    workers: usize,
) -> Result<TupleFile<SlabTuple>> {
    let runner = Runner {
        ctx,
        opts: *opts,
        workers: workers.max(1),
    };
    runner.solve(rects, slab, sorted)
}

struct Runner<'a> {
    ctx: &'a EmContext,
    opts: ExactMaxRsOptions,
    /// Worker threads available to this recursion node; children run with 1
    /// (the top-level slabs are the coarsest — and therefore best — unit of
    /// parallel work).
    workers: usize,
}

impl<'a> Runner<'a> {
    fn memory_rects(&self) -> usize {
        self.opts
            .memory_rects
            .unwrap_or_else(|| self.ctx.config().mem_records::<RectRecord>())
            .max(4)
    }

    fn fanout(&self) -> usize {
        self.opts
            .fanout
            .unwrap_or_else(|| self.ctx.config().fanout())
            .max(2)
    }

    /// Solves one recursion node: consumes `input` (the rectangles of `slab`)
    /// and returns the slab-file of `slab`.
    fn solve(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
        sorted: bool,
    ) -> Result<TupleFile<SlabTuple>> {
        let n = input.len() as usize;
        if n <= self.memory_rects() {
            return self.solve_in_memory(input, slab);
        }

        // Divide the slab into m sub-slabs with roughly equal rectangle counts.
        let source = if sorted {
            BoundarySource::SortedExact
        } else {
            BoundarySource::Sampled(self.opts.boundary_sample)
        };
        let partition = compute_partition(self.ctx, &input, slab, self.fanout(), source)?;
        if partition.num_slabs() < 2 {
            // Heavy ties on x: no vertical split can make progress.  Fall back
            // to the in-memory sweep (documented guard; never triggered by the
            // paper's workloads).
            return self.solve_in_memory(input, slab);
        }

        let dist = distribute(self.ctx, &input, &partition)?;
        if !self.opts.keep_intermediates {
            self.ctx.delete_file(input)?;
        }

        // Conquer each sub-slab.  `solve_child` guards against the pathological
        // case where a child is as large as its parent (extreme ties on x).
        // With workers to spare, the sub-slabs — independent by construction —
        // are solved concurrently, each child running sequentially inside its
        // worker.  Any failure deletes the files this node still owns —
        // including the span events — so a failed run leaves no orphans on a
        // long-lived context.
        let workers = self.workers.min(partition.num_slabs());
        let merge_result =
            self.conquer_and_combine(dist.slab_inputs, &partition, &dist.span_events, workers, n);
        let merged = match merge_result {
            Ok(merged) => merged,
            Err(e) => {
                let _ = self.ctx.delete_file(dist.span_events);
                return Err(e);
            }
        };
        self.ctx.delete_file(dist.span_events)?;
        Ok(merged)
    }

    /// Solves every sub-slab (in parallel when `workers > 1`) and combines the
    /// child slab-files with the span events.  On failure, all successfully
    /// produced child files are deleted before the error is returned; the
    /// span-events file stays with the caller.
    fn conquer_and_combine(
        &self,
        slab_inputs: Vec<TupleFile<RectRecord>>,
        partition: &crate::slab::SlabPartition,
        span_events: &TupleFile<crate::records::SpanEvent>,
        workers: usize,
        parent_size: usize,
    ) -> Result<TupleFile<SlabTuple>> {
        let outcomes = if workers > 1 {
            let child = Runner {
                ctx: self.ctx,
                opts: self.opts,
                workers: 1,
            };
            parallel_map(workers, slab_inputs, |i, child_input| {
                child.solve_child(child_input, partition.slab(i), parent_size)
            })
        } else {
            slab_inputs
                .into_iter()
                .enumerate()
                .map(|(i, child_input)| {
                    self.solve_child(child_input, partition.slab(i), parent_size)
                })
                .collect()
        };

        let mut child_files = Vec::with_capacity(outcomes.len());
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(file) => child_files.push(file),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            for f in child_files {
                let _ = self.ctx.delete_file(f);
            }
            return Err(e);
        }

        if workers > 1 {
            // Pairwise tree reduction (consumes the child files, cleaning up
            // on its own errors); identical to the flat sweep, see
            // `merge_sweep_tree`.
            merge_sweep_tree(
                self.ctx,
                child_files,
                &partition.slabs(),
                span_events,
                self.workers,
            )
        } else {
            match merge_sweep(self.ctx, &child_files, &partition.slabs(), span_events) {
                Ok(merged) => {
                    for f in child_files {
                        self.ctx.delete_file(f)?;
                    }
                    Ok(merged)
                }
                Err(e) => {
                    for f in child_files {
                        let _ = self.ctx.delete_file(f);
                    }
                    Err(e)
                }
            }
        }
    }

    /// Recurses into a child slab, guarding against pathological inputs where
    /// the child is as large as the parent (possible only under extreme ties);
    /// such children are solved in memory to guarantee termination.
    fn solve_child(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
        parent_size: usize,
    ) -> Result<TupleFile<SlabTuple>> {
        if input.len() as usize >= parent_size && input.len() as usize > self.memory_rects() {
            return self.solve_in_memory(input, slab);
        }
        self.solve(input, slab, false)
    }

    fn solve_in_memory(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
    ) -> Result<TupleFile<SlabTuple>> {
        let rects = self.ctx.read_all(&input)?;
        if !self.opts.keep_intermediates {
            self.ctx.delete_file(input)?;
        }
        // Borrow the worker thread's sweep scratch: the recursion sweeps one
        // in-memory slab after another on this thread, and the breakpoint /
        // event / segment-tree buffers are reused across all of them.
        let mut writer = self.ctx.create_writer::<SlabTuple>()?;
        with_sweep_scratch(|scratch| -> Result<()> {
            for t in scratch.sweep(&rects, slab) {
                writer.push(t)?;
            }
            Ok(())
        })?;
        writer.finish().map_err(CoreError::from)
    }
}

/// Scans the final slab-file for the best tuple and converts it into a result.
pub fn extract_best(ctx: &EmContext, slab_file: &TupleFile<SlabTuple>) -> Result<MaxRsResult> {
    let mut reader = ctx.open_reader(slab_file);
    let mut best: Option<SlabTuple> = None;
    let mut best_next_y: Option<f64> = None;
    let mut awaiting_next = false;
    while let Some(t) = reader.next_record()? {
        if awaiting_next {
            best_next_y = Some(t.y);
            awaiting_next = false;
        }
        if best.is_none_or(|b| t.sum > b.sum) {
            best = Some(t);
            best_next_y = None;
            awaiting_next = true;
        }
    }
    let best = match best {
        Some(b) => b,
        None => return Ok(MaxRsResult::empty()),
    };
    let y_lo = best.y;
    let y_hi = best_next_y.filter(|&y| y > y_lo).unwrap_or(y_lo + 1.0);
    let x = best.interval();
    let region = Rect::new(x.lo, x.hi, y_lo, y_hi);
    let center = Point::new(x.representative(), (y_lo + y_hi) / 2.0);
    Ok(MaxRsResult {
        center,
        total_weight: best.sum,
        region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{load_objects, sort_objects_by_x};
    use crate::plane_sweep::max_rs_in_memory;
    use maxrs_em::EmConfig;
    use maxrs_geometry::WeightedPoint;

    fn tiny_ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 1024).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 4.0).floor(),
                )
            })
            .collect()
    }

    #[test]
    fn presorted_pass_equals_unsorted_pass_bit_for_bit() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(400, 13, 700.0);
        let size = RectSize::square(90.0);
        let opts = ExactMaxRsOptions::sequential();

        let file = load_objects(&ctx, &objects).unwrap();
        let unsorted = SweepPass::new(&ctx, &opts).max_rs(&file, size).unwrap();

        let sorted = sort_objects_by_x(&ctx, &file).unwrap();
        let presorted = SweepPass::presorted(&ctx, &opts)
            .max_rs(&sorted, size)
            .unwrap();

        assert_eq!(unsorted, presorted);
        assert_eq!(unsorted, max_rs_in_memory(&objects, size));
        ctx.delete_file(file).unwrap();
        ctx.delete_file(sorted).unwrap();
    }

    #[test]
    fn weight_scale_negates_the_objective() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(200, 5, 300.0);
        let size = RectSize::square(40.0);
        let opts = ExactMaxRsOptions::sequential();
        let file = load_objects(&ctx, &objects).unwrap();

        // A weight scale of -1 turns the max into the (negated) min; over an
        // unbounded root the least-covered placement covers nothing.
        let negated = SweepPass::new(&ctx, &opts)
            .with_weight_scale(-1.0)
            .max_rs(&file, size)
            .unwrap();
        assert_eq!(negated.total_weight, 0.0);
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn root_slab_restricts_the_sweep() {
        let ctx = tiny_ctx();
        // Two clusters; the root slab admits only the lighter right one.
        let mut objects = Vec::new();
        for i in 0..30 {
            objects.push(WeightedPoint::at(10.0 + (i % 5) as f64, i as f64, 2.0));
        }
        for i in 0..10 {
            objects.push(WeightedPoint::at(500.0 + (i % 3) as f64, i as f64, 1.0));
        }
        let size = RectSize::new(20.0, 100.0);
        let opts = ExactMaxRsOptions {
            memory_rects: Some(8),
            ..ExactMaxRsOptions::sequential()
        };
        let file = load_objects(&ctx, &objects).unwrap();
        let everywhere = SweepPass::new(&ctx, &opts).max_rs(&file, size).unwrap();
        let right_only = SweepPass::new(&ctx, &opts)
            .with_root(Interval::new(400.0, 600.0))
            .max_rs(&file, size)
            .unwrap();
        assert_eq!(everywhere.total_weight, 60.0);
        assert_eq!(right_only.total_weight, 10.0);
        assert!(right_only.center.x >= 400.0 && right_only.center.x <= 600.0);
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn staged_execution_equals_the_composed_pipeline() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(300, 7, 500.0);
        let size = RectSize::square(60.0);
        let opts = ExactMaxRsOptions::sequential();
        let file = load_objects(&ctx, &objects).unwrap();
        let pass = SweepPass::new(&ctx, &opts);

        let composed = pass.max_rs(&file, size).unwrap();

        let slab_file = pass.slab_file(&file, size).unwrap();
        let extracted = pass.extract_best(&slab_file).unwrap();
        ctx.delete_file(slab_file).unwrap();
        let staged = pass.canonicalize(&file, size, extracted).unwrap();

        assert_eq!(composed, staged);
        ctx.delete_file(file).unwrap();
    }
}
