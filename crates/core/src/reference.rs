//! Brute-force reference implementations.
//!
//! These run in `O(n³)` time and exist to validate the real algorithms in unit,
//! integration and property-based tests.  They evaluate the objective on one
//! candidate point per cell of the arrangement of transformed rectangles
//! (respectively circles), which provably contains an optimal placement.

use maxrs_geometry::{range_sum_circle, range_sum_rect, Point, Rect, RectSize, WeightedPoint};

use crate::result::{MaxCrsResult, MaxRsResult};

/// Exhaustively solves MaxRS by evaluating the range sum at one interior point
/// of every cell of the breakpoint grid.
///
/// The location-weight function is piecewise constant over the grid induced by
/// the vertical lines `x = o.x ± d1/2` and horizontal lines `y = o.y ± d2/2`;
/// testing one interior point per cell therefore finds the exact optimum
/// (under the paper's open-boundary semantics).
pub fn brute_force_max_rs(objects: &[WeightedPoint], size: RectSize) -> MaxRsResult {
    if objects.is_empty() {
        return MaxRsResult::empty();
    }
    let xs = breakpoints(objects.iter().map(|o| o.point.x), size.width / 2.0);
    let ys = breakpoints(objects.iter().map(|o| o.point.y), size.height / 2.0);
    let mut best = MaxRsResult {
        center: Point::new(xs[0] - 1.0, ys[0] - 1.0),
        total_weight: 0.0,
        region: Rect::new(xs[0] - 2.0, xs[0] - 1.0, ys[0] - 2.0, ys[0] - 1.0),
    };
    for wx in xs.windows(2) {
        let cx = (wx[0] + wx[1]) / 2.0;
        for wy in ys.windows(2) {
            let cy = (wy[0] + wy[1]) / 2.0;
            let p = Point::new(cx, cy);
            let w = range_sum_rect(objects, p, size);
            if w > best.total_weight {
                best = MaxRsResult {
                    center: p,
                    total_weight: w,
                    region: Rect::new(wx[0], wx[1], wy[0], wy[1]),
                };
            }
        }
    }
    best
}

/// Exhaustively solves MaxCRS (with *closed* disks, see the module docs of
/// [`crate::crs_exact`]) by testing every disk center and every intersection
/// point of two disk boundaries.
pub fn brute_force_max_crs(objects: &[WeightedPoint], diameter: f64) -> MaxCrsResult {
    if objects.is_empty() {
        return MaxCrsResult::empty();
    }
    let radius = diameter / 2.0;
    let mut candidates: Vec<Point> = objects.iter().map(|o| o.point).collect();
    for i in 0..objects.len() {
        for j in (i + 1)..objects.len() {
            let a = objects[i].to_circle(diameter);
            let b = objects[j].to_circle(diameter);
            if let Some(points) = a.boundary_intersections(&b) {
                candidates.extend_from_slice(&points);
            }
        }
    }
    let mut best = MaxCrsResult::empty();
    best.center = objects[0].point;
    for p in candidates {
        // Closed-disk evaluation: the candidate points lie exactly on circle
        // boundaries, so the open-boundary objective would systematically miss
        // them; see crs_exact for the discussion.
        let w: f64 = objects
            .iter()
            .filter(|o| o.point.distance_sq(&p) <= radius * radius + 1e-9)
            .map(|o| o.weight)
            .sum();
        if w > best.total_weight {
            best = MaxCrsResult {
                center: p,
                total_weight: w,
            };
        }
    }
    best
}

/// Evaluates the MaxCRS objective with open disks at a given point; re-exported
/// for tests that want to compare approximate answers against optimal ones.
pub fn circle_objective(objects: &[WeightedPoint], center: Point, diameter: f64) -> f64 {
    range_sum_circle(objects, center, diameter)
}

/// Evaluates the MaxRS objective with open boundaries at a given point.
pub fn rect_objective(objects: &[WeightedPoint], center: Point, size: RectSize) -> f64 {
    range_sum_rect(objects, center, size)
}

/// All breakpoint coordinates (`c ± half`) plus sentinels, sorted and deduped.
fn breakpoints(coords: impl Iterator<Item = f64>, half: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for c in coords {
        out.push(c - half);
        out.push(c + half);
    }
    out.sort_unstable_by(f64::total_cmp);
    out.dedup();
    // Sentinels so that windows(2) also covers the outside cells.
    let lo = out.first().copied().unwrap_or(0.0) - 1.0;
    let hi = out.last().copied().unwrap_or(0.0) + 1.0;
    out.insert(0, lo);
    out.push(hi);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs() {
        assert_eq!(
            brute_force_max_rs(&[], RectSize::square(2.0)).total_weight,
            0.0
        );
        assert_eq!(brute_force_max_crs(&[], 2.0).total_weight, 0.0);
    }

    #[test]
    fn single_object() {
        let objects = vec![WeightedPoint::at(5.0, 5.0, 3.0)];
        let r = brute_force_max_rs(&objects, RectSize::square(2.0));
        assert_eq!(r.total_weight, 3.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(2.0)),
            3.0
        );
        let c = brute_force_max_crs(&objects, 2.0);
        assert_eq!(c.total_weight, 3.0);
    }

    #[test]
    fn two_clusters_rect() {
        // Three objects close together (total 3) vs two heavy objects (total 4).
        let objects = vec![
            WeightedPoint::unit(0.0, 0.0),
            WeightedPoint::unit(0.5, 0.5),
            WeightedPoint::unit(0.2, 0.8),
            WeightedPoint::at(10.0, 10.0, 2.0),
            WeightedPoint::at(10.5, 10.5, 2.0),
        ];
        let r = brute_force_max_rs(&objects, RectSize::square(2.0));
        assert_eq!(r.total_weight, 4.0);
        assert!(r.center.x > 5.0, "optimum must be at the heavy cluster");
    }

    #[test]
    fn paper_figure1_example() {
        // Eight unit objects coverable by a 4x3 rectangle, plus scattered noise.
        let mut objects = vec![
            WeightedPoint::unit(10.0, 10.0),
            WeightedPoint::unit(10.5, 11.0),
            WeightedPoint::unit(11.0, 10.2),
            WeightedPoint::unit(11.5, 11.5),
            WeightedPoint::unit(12.0, 10.8),
            WeightedPoint::unit(12.5, 11.2),
            WeightedPoint::unit(13.0, 10.4),
            WeightedPoint::unit(13.2, 12.0),
        ];
        objects.push(WeightedPoint::unit(0.0, 0.0));
        objects.push(WeightedPoint::unit(30.0, 0.0));
        objects.push(WeightedPoint::unit(0.0, 30.0));
        let r = brute_force_max_rs(&objects, RectSize::new(4.0, 3.0));
        assert_eq!(r.total_weight, 8.0);
    }

    #[test]
    fn circle_excludes_far_points() {
        let objects = vec![
            WeightedPoint::unit(0.0, 0.0),
            WeightedPoint::unit(1.0, 0.0),
            WeightedPoint::unit(0.5, 0.8),
            WeightedPoint::unit(100.0, 100.0),
        ];
        let c = brute_force_max_crs(&objects, 2.5);
        assert_eq!(c.total_weight, 3.0);
        // The rectangle version with the MBR of that circle covers the same three.
        let r = brute_force_max_rs(&objects, RectSize::square(2.5));
        assert_eq!(r.total_weight, 3.0);
    }
}
