//! ExactMaxRS: the external-memory distribution-sweep algorithm (Section 5).
//!
//! Pipeline:
//!
//! 1. **Transform** every object into a rectangle of the query size centered
//!    at the object (`O(N/B)` I/Os).
//! 2. **Sort** the rectangles by center x with the external merge sort
//!    (`O((N/B) log_{M/B}(N/B))` I/Os).
//! 3. **Recurse**: if the rectangles of the current slab fit in the memory
//!    budget `M`, run the in-memory plane sweep; otherwise divide the slab
//!    into `m = Θ(M/B)` sub-slabs, distribute the rectangles
//!    ([`crate::slab::distribute`]), solve each sub-slab recursively and
//!    combine the child slab-files with [`merge_sweep`](crate::merge_sweep()).
//! 4. **Extract** the best tuple of the final slab-file and **canonicalize**
//!    it (widen to the full arrangement cell — see [`crate::sweep`],
//!    "Canonical max-regions").
//!
//! All four stages live in the **sweep kernel** ([`crate::sweep::SweepPass`]);
//! this module keeps the classic entry point [`exact_max_rs`] — one kernel
//! pass with identity weights over an unbounded root slab — together with its
//! tuning knobs ([`ExactMaxRsOptions`]) and the object-file helpers.  Callers
//! that need a different input order, a weight scale or a root slab (the
//! prepared fast path, MinRS, the batched executor) parameterize a
//! [`SweepPass`] directly instead of going through per-variant forks of this
//! pipeline.

use maxrs_em::{external_sort_by_key, EmConfig, EmContext, TupleFile};
use maxrs_geometry::{RectSize, WeightedPoint};

use crate::error::{CoreError, Result};
use crate::parallel::available_parallelism;
use crate::records::ObjectRecord;
use crate::result::MaxRsResult;
use crate::sweep::SweepPass;

/// Minimum buffer-pool blocks each parallel worker needs before adding more
/// workers pays off: roughly one input block, one output block and headroom
/// for the merge inputs.  Below this the shared pool thrashes, so
/// [`ExactMaxRsOptions::effective_parallelism`] caps the worker count.
const MIN_POOL_BLOCKS_PER_WORKER: usize = 8;

/// Tuning knobs of [`exact_max_rs`] and every other [`SweepPass`]-based
/// pipeline.  The defaults follow the EM configuration of the context (`M`
/// and `m` derived from the buffer size), exactly like the paper's
/// experiments; overrides exist for tests and ablation studies.
#[derive(Debug, Clone, Copy)]
pub struct ExactMaxRsOptions {
    /// Override for the distribution fan-out `m` (default: `EmConfig::fanout`).
    pub fanout: Option<usize>,
    /// Override for the in-memory threshold `M`, in rectangles (default:
    /// `EmConfig::mem_records::<RectRecord>()`).
    pub memory_rects: Option<usize>,
    /// Reservoir size used when slab boundaries must be estimated from an
    /// unsorted rectangle file (recursion levels below the first).
    pub boundary_sample: usize,
    /// Keep the sorted rectangle file instead of deleting it (useful when the
    /// caller wants to re-run with different parameters).
    pub keep_intermediates: bool,
    /// Maximum number of worker threads for the parallel slab stage
    /// (default: the available core count; `1` reproduces the sequential
    /// distribution sweep bit-for-bit).
    ///
    /// With more than one worker, the sub-slabs of the top recursion node are
    /// solved concurrently and their slab-files are combined by the pairwise
    /// [`merge_sweep_tree`](crate::merge_sweep_tree) reduction instead of the
    /// flat `m`-way [`merge_sweep`](crate::merge_sweep()).  Results are
    /// identical for integer-valued weights; see `merge_sweep_tree` for the
    /// floating-point association caveat.  The worker count actually used is
    /// additionally capped by the buffer size — see
    /// [`ExactMaxRsOptions::effective_parallelism`].
    ///
    /// **Memory-model note:** each worker keeps the full in-memory budget
    /// `M` for its base cases (as in the parallel-EM model, where every
    /// processor owns a private memory of size `M`), so a parallel run may
    /// hold up to `workers x M` bytes of rectangle data at once.  Keeping the
    /// per-worker threshold at `M` — rather than dividing it — is what makes
    /// the recursion shape, and therefore the result, identical to the
    /// sequential sweep.
    pub parallelism: usize,
}

impl Default for ExactMaxRsOptions {
    fn default() -> Self {
        ExactMaxRsOptions {
            fanout: None,
            memory_rects: None,
            boundary_sample: 8192,
            keep_intermediates: false,
            parallelism: available_parallelism(),
        }
    }
}

impl ExactMaxRsOptions {
    /// The default options with the parallel slab stage disabled: exactly the
    /// paper's sequential distribution sweep.
    pub fn sequential() -> Self {
        ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        }
    }

    /// The default options with an explicit worker-thread cap.
    pub fn with_parallelism(workers: usize) -> Self {
        ExactMaxRsOptions {
            parallelism: workers.max(1),
            ..Default::default()
        }
    }

    /// The number of workers the sweep will actually use under `config`:
    /// [`parallelism`](ExactMaxRsOptions::parallelism), but never more than
    /// one worker per 8 buffer-pool blocks (each worker needs an input block,
    /// an output block and merge headroom).  Tiny buffers (as used by
    /// I/O-accounting tests and ablations) therefore degrade gracefully to
    /// the sequential path instead of thrashing the shared pool.
    pub fn effective_parallelism(&self, config: EmConfig) -> usize {
        let pool_quota = (config.buffer_blocks() / MIN_POOL_BLOCKS_PER_WORKER).max(1);
        self.parallelism.max(1).min(pool_quota)
    }
}

/// Runs ExactMaxRS over an object file already stored in the EM context: one
/// [`SweepPass`] with identity weights over an unbounded root slab.
///
/// Returns the optimal location, the maximum range sum and the max-region.
/// All temporary files are deleted before returning; the input file is left
/// untouched.  I/O counters of `ctx` reflect the full pipeline (transform,
/// sort, distribution sweep).  For an input already sorted by x (see
/// [`sort_objects_by_x`]), use
/// [`SweepPass::presorted`](crate::sweep::SweepPass::presorted) — same
/// kernel, no sort, bit-identical answer.
pub fn exact_max_rs(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    opts: &ExactMaxRsOptions,
) -> Result<MaxRsResult> {
    SweepPass::new(ctx, opts).max_rs(objects, size)
}

/// Sorts an object file by object x with the external merge sort — the
/// one-time preprocessing retained by
/// [`PreparedDataset`](crate::PreparedDataset).
///
/// The MaxRS transform centers every rectangle at its object, so x-order of
/// the objects is center-x order of the transformed rectangles regardless of
/// the query's rectangle size; one sort therefore serves every subsequent
/// [`Query`](crate::Query) variant.  The input file is left untouched.
pub fn sort_objects_by_x(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
) -> Result<TupleFile<ObjectRecord>> {
    external_sort_by_key(ctx, objects, |r| r.0.point.x).map_err(CoreError::from)
}

/// Convenience wrapper: loads the objects into the context and runs
/// [`exact_max_rs`].  The temporary object file is removed afterwards.
pub fn exact_max_rs_from_objects(
    ctx: &EmContext,
    objects: &[WeightedPoint],
    size: RectSize,
    opts: &ExactMaxRsOptions,
) -> Result<MaxRsResult> {
    let file = load_objects(ctx, objects)?;
    let result = exact_max_rs(ctx, &file, size, opts);
    ctx.delete_file(file)?;
    result
}

/// Writes a slice of weighted points as an object file in the EM context.
pub fn load_objects(ctx: &EmContext, objects: &[WeightedPoint]) -> Result<TupleFile<ObjectRecord>> {
    let mut writer = ctx.create_writer::<ObjectRecord>()?;
    for o in objects {
        writer.push(&ObjectRecord(*o))?;
    }
    writer.finish().map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane_sweep::max_rs_in_memory;
    use crate::records::RectRecord;
    use crate::reference::{brute_force_max_rs, rect_objective};
    use maxrs_em::EmConfig;

    /// A context whose tiny buffer forces real recursion even for small inputs:
    /// 256-byte blocks (6 RectRecords each), 1 KB buffer (25 RectRecords in
    /// memory, fan-out 2).
    fn tiny_ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 1024).unwrap())
    }

    /// A context large enough that everything fits in memory (single base case).
    fn roomy_ctx() -> EmContext {
        EmContext::new(EmConfig::new(4096, 1024 * 1024).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = next() * extent;
                let y = next() * extent;
                let w = 1.0 + (next() * 4.0).floor();
                WeightedPoint::at(x, y, w)
            })
            .collect()
    }

    #[test]
    fn empty_dataset() {
        let ctx = roomy_ctx();
        let r = exact_max_rs_from_objects(&ctx, &[], RectSize::square(10.0), &Default::default())
            .unwrap();
        assert_eq!(r.total_weight, 0.0);
    }

    #[test]
    fn single_object() {
        let ctx = roomy_ctx();
        let objects = vec![WeightedPoint::at(100.0, 200.0, 7.0)];
        let r =
            exact_max_rs_from_objects(&ctx, &objects, RectSize::square(10.0), &Default::default())
                .unwrap();
        assert_eq!(r.total_weight, 7.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(10.0)),
            7.0
        );
    }

    #[test]
    fn matches_in_memory_sweep_when_everything_fits() {
        let ctx = roomy_ctx();
        let objects = pseudo_random_objects(300, 42, 1000.0);
        let size = RectSize::new(120.0, 80.0);
        let external =
            exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }

    #[test]
    fn recursion_matches_in_memory_answer() {
        // Small buffer -> the 400-object input needs several recursion levels.
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(400, 7, 500.0);
        let size = RectSize::square(60.0);
        let external =
            exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }

    #[test]
    fn recursion_matches_brute_force_small() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(60, 99, 100.0);
        for side in [5.0, 20.0, 60.0] {
            let size = RectSize::square(side);
            let external =
                exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
            let brute = brute_force_max_rs(&objects, size);
            assert_eq!(external.total_weight, brute.total_weight, "side={side}");
            assert_eq!(
                rect_objective(&objects, external.center, size),
                external.total_weight,
                "side={side}"
            );
        }
    }

    #[test]
    fn explicit_fanout_and_memory_overrides() {
        let ctx = roomy_ctx();
        let objects = pseudo_random_objects(500, 3, 2000.0);
        let size = RectSize::square(150.0);
        let reference = max_rs_in_memory(&objects, size);
        for (fanout, mem) in [(2, 16), (3, 50), (8, 100), (16, 64)] {
            let opts = ExactMaxRsOptions {
                fanout: Some(fanout),
                memory_rects: Some(mem),
                ..Default::default()
            };
            let r = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
            assert_eq!(
                r.total_weight, reference.total_weight,
                "fanout={fanout} mem={mem}"
            );
        }
    }

    #[test]
    fn duplicated_x_coordinates_do_not_break_recursion() {
        // All objects share one of three x values: slab boundaries collapse and
        // the fallback path must still produce the right answer.
        let ctx = tiny_ctx();
        let mut objects = Vec::new();
        for i in 0..150 {
            let x = [10.0, 20.0, 30.0][i % 3];
            objects.push(WeightedPoint::at(x, i as f64, 1.0));
        }
        let size = RectSize::new(5.0, 400.0);
        let opts = ExactMaxRsOptions {
            memory_rects: Some(20),
            fanout: Some(4),
            ..Default::default()
        };
        let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(external.total_weight, 50.0);
    }

    #[test]
    fn weighted_answer_prefers_heavy_cluster_under_recursion() {
        let ctx = tiny_ctx();
        let mut objects = pseudo_random_objects(200, 11, 1000.0);
        // Heavy cluster far away from the noise.
        for i in 0..5 {
            objects.push(WeightedPoint::at(
                5000.0 + i as f64,
                5000.0 + i as f64,
                100.0,
            ));
        }
        let size = RectSize::square(50.0);
        let r = exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        assert_eq!(r.total_weight, 500.0);
        assert!((r.center.x - 5000.0).abs() < 100.0);
    }

    #[test]
    fn temporary_files_are_cleaned_up() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(300, 21, 800.0);
        let file = load_objects(&ctx, &objects).unwrap();
        let _ = exact_max_rs(&ctx, &file, RectSize::square(40.0), &Default::default()).unwrap();
        // Only the input object file may remain on the simulated disk.
        assert!(
            ctx.disk_blocks() <= ctx.config().blocks_for::<ObjectRecord>(file.len()),
            "intermediate files must be deleted ({} blocks remain)",
            ctx.disk_blocks()
        );
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn io_cost_is_near_linear_in_blocks() {
        // With the paper's parameters the recursion has a single level, so the
        // I/O cost must stay within a small constant times N/B.
        let ctx = EmContext::new(EmConfig::new(512, 8 * 512).unwrap());
        let objects = pseudo_random_objects(4000, 5, 100_000.0);
        let file = load_objects(&ctx, &objects).unwrap();
        ctx.reset_stats();
        let _ = exact_max_rs(&ctx, &file, RectSize::square(1000.0), &Default::default()).unwrap();
        let rect_blocks = ctx.config().blocks_for::<RectRecord>(objects.len() as u64);
        let total = ctx.stats().total();
        assert!(
            total < 60 * rect_blocks,
            "ExactMaxRS used {total} I/Os for {rect_blocks} rectangle blocks"
        );
    }
}
