//! ExactMaxRS: the external-memory distribution-sweep algorithm (Section 5).
//!
//! Pipeline:
//!
//! 1. **Transform** every object into a rectangle of the query size centered
//!    at the object (`O(N/B)` I/Os).
//! 2. **Sort** the rectangles by center x with the external merge sort
//!    (`O((N/B) log_{M/B}(N/B))` I/Os).
//! 3. **Recurse**: if the rectangles of the current slab fit in the memory
//!    budget `M`, run the in-memory plane sweep; otherwise divide the slab
//!    into `m = Θ(M/B)` sub-slabs, distribute the rectangles
//!    ([`crate::slab::distribute`]), solve each sub-slab recursively and
//!    combine the child slab-files with [`merge_sweep`](crate::merge_sweep()).
//! 4. **Extract** the best tuple of the final slab-file: its max-interval and
//!    the strip up to the next tuple form the reported max-region; the
//!    centroid of that region is an optimal location.
//!
//! # Canonical max-regions
//!
//! The distribution sweep reports the same *maximum weight* as the in-memory
//! plane sweep, but its slab boundaries subdivide the x-axis more finely than
//! the rectangle-edge arrangement alone, so the winning tuple's x-interval can
//! be a strict sub-interval of the arrangement cell the in-memory sweep would
//! report.  [`exact_max_rs`] therefore *widens* the winning interval back to
//! the full arrangement cell with one extra `O(N/B)` scan of the object file
//! (see [`next_breakpoint_after`]): both sweeps break ties leftmost-first and
//! agree on the winning event `y`, so after widening the external result —
//! center, weight **and** max-region — is bit-for-bit identical to
//! [`max_rs_in_memory`](crate::plane_sweep::max_rs_in_memory()).  The unified
//! query layer ([`crate::engine::MaxRsEngine::run`]) relies on this to give
//! every `Query` variant strategy-independent answers.

use maxrs_em::{external_sort_by_key, EmConfig, EmContext, TupleFile};
use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::error::{CoreError, Result};
use crate::merge_sweep::{merge_sweep, merge_sweep_tree};
use crate::parallel::{available_parallelism, parallel_map};
use crate::plane_sweep::plane_sweep_slab;
use crate::records::{ObjectRecord, RectRecord, SlabTuple};
use crate::result::MaxRsResult;
use crate::slab::{compute_partition, distribute, BoundarySource};

/// Minimum buffer-pool blocks each parallel worker needs before adding more
/// workers pays off: roughly one input block, one output block and headroom
/// for the merge inputs.  Below this the shared pool thrashes, so
/// [`ExactMaxRsOptions::effective_parallelism`] caps the worker count.
const MIN_POOL_BLOCKS_PER_WORKER: usize = 8;

/// Tuning knobs of [`exact_max_rs`].  The defaults follow the EM configuration
/// of the context (`M` and `m` derived from the buffer size), exactly like the
/// paper's experiments; overrides exist for tests and ablation studies.
#[derive(Debug, Clone, Copy)]
pub struct ExactMaxRsOptions {
    /// Override for the distribution fan-out `m` (default: `EmConfig::fanout`).
    pub fanout: Option<usize>,
    /// Override for the in-memory threshold `M`, in rectangles (default:
    /// `EmConfig::mem_records::<RectRecord>()`).
    pub memory_rects: Option<usize>,
    /// Reservoir size used when slab boundaries must be estimated from an
    /// unsorted rectangle file (recursion levels below the first).
    pub boundary_sample: usize,
    /// Keep the sorted rectangle file instead of deleting it (useful when the
    /// caller wants to re-run with different parameters).
    pub keep_intermediates: bool,
    /// Maximum number of worker threads for the parallel slab stage
    /// (default: the available core count; `1` reproduces the sequential
    /// distribution sweep bit-for-bit).
    ///
    /// With more than one worker, the sub-slabs of the top recursion node are
    /// solved concurrently and their slab-files are combined by the pairwise
    /// [`merge_sweep_tree`] reduction instead of the flat `m`-way
    /// [`merge_sweep`].  Results are identical for integer-valued weights;
    /// see `merge_sweep_tree` for the floating-point association caveat.  The
    /// worker count actually used is additionally capped by the buffer size —
    /// see [`ExactMaxRsOptions::effective_parallelism`].
    ///
    /// **Memory-model note:** each worker keeps the full in-memory budget
    /// `M` for its base cases (as in the parallel-EM model, where every
    /// processor owns a private memory of size `M`), so a parallel run may
    /// hold up to `workers x M` bytes of rectangle data at once.  Keeping the
    /// per-worker threshold at `M` — rather than dividing it — is what makes
    /// the recursion shape, and therefore the result, identical to the
    /// sequential sweep.
    pub parallelism: usize,
}

impl Default for ExactMaxRsOptions {
    fn default() -> Self {
        ExactMaxRsOptions {
            fanout: None,
            memory_rects: None,
            boundary_sample: 8192,
            keep_intermediates: false,
            parallelism: available_parallelism(),
        }
    }
}

impl ExactMaxRsOptions {
    /// The default options with the parallel slab stage disabled: exactly the
    /// paper's sequential distribution sweep.
    pub fn sequential() -> Self {
        ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        }
    }

    /// The default options with an explicit worker-thread cap.
    pub fn with_parallelism(workers: usize) -> Self {
        ExactMaxRsOptions {
            parallelism: workers.max(1),
            ..Default::default()
        }
    }

    /// The number of workers the sweep will actually use under `config`:
    /// [`parallelism`](ExactMaxRsOptions::parallelism), but never more than
    /// one worker per 8 buffer-pool blocks (each worker needs an input block,
    /// an output block and merge headroom).  Tiny buffers (as used by
    /// I/O-accounting tests and ablations) therefore degrade gracefully to
    /// the sequential path instead of thrashing the shared pool.
    pub fn effective_parallelism(&self, config: EmConfig) -> usize {
        let pool_quota = (config.buffer_blocks() / MIN_POOL_BLOCKS_PER_WORKER).max(1);
        self.parallelism.max(1).min(pool_quota)
    }
}

/// Runs ExactMaxRS over an object file already stored in the EM context.
///
/// Returns the optimal location, the maximum range sum and the max-region.
/// All temporary files are deleted before returning; the input file is left
/// untouched.  I/O counters of `ctx` reflect the full pipeline (transform,
/// sort, distribution sweep).
pub fn exact_max_rs(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    opts: &ExactMaxRsOptions,
) -> Result<MaxRsResult> {
    if objects.is_empty() {
        return Ok(MaxRsResult::empty());
    }

    // 1. Transform objects into centered rectangles.
    let rects = transform_to_rect_file(ctx, objects, size)?;

    // 2 + 3. Sort by center x, then run the distribution-sweep recursion.
    let final_slab = distribution_sweep(ctx, rects, Interval::UNBOUNDED, opts)?;

    // 4. Extract the best region from the final slab-file and widen it to the
    // full arrangement cell (see the module docs on canonical max-regions).
    let result = extract_best(ctx, &final_slab)?;
    ctx.delete_file(final_slab)?;
    widen_to_arrangement_cell(ctx, objects, size, Interval::UNBOUNDED, result)
}

/// Sorts an already-transformed rectangle file by center x and runs the
/// distribution-sweep recursion over it, returning the final slab-file of
/// `root` (the y-sorted `⟨y, max-interval, sum⟩` tuples of the whole slab).
///
/// This is the reusable middle of the ExactMaxRS pipeline: [`exact_max_rs`]
/// calls it with the identity transform and an unbounded root slab, the MinRS
/// path of [`crate::engine::MaxRsEngine::run`] with weight-negated rectangles
/// and the query domain's x-interval as `root`.  The input file is consumed;
/// rectangle weights may be negative (only [`WeightedPoint`] insists on
/// non-negativity).  `opts.parallelism` selects between the paper's flat
/// sequential sweep and the parallel slab stage exactly as in
/// [`exact_max_rs`].
pub fn distribution_sweep(
    ctx: &EmContext,
    rects: TupleFile<RectRecord>,
    root: Interval,
    opts: &ExactMaxRsOptions,
) -> Result<TupleFile<SlabTuple>> {
    let sorted = external_sort_by_key(ctx, &rects, |r| r.center_x())?;
    ctx.delete_file(rects)?;
    distribution_sweep_presorted(ctx, sorted, root, opts)
}

/// [`distribution_sweep`] without its leading external sort: the input must
/// already be ordered by center x.
///
/// This is the fast path of [`PreparedDataset`](crate::PreparedDataset):
/// transformed rectangles are centered at their objects, so an object file
/// sorted by x yields — for *every* query size — a rectangle file already in
/// center-x order, and repeated queries over a prepared dataset skip the
/// `O((N/B) log_{M/B}(N/B))` sort entirely, leaving the `O(N/B)`-per-level
/// sweep as the only cost.  The input file is consumed.
pub fn distribution_sweep_presorted(
    ctx: &EmContext,
    sorted: TupleFile<RectRecord>,
    root: Interval,
    opts: &ExactMaxRsOptions,
) -> Result<TupleFile<SlabTuple>> {
    let runner = Runner {
        ctx,
        opts: *opts,
        workers: opts.effective_parallelism(ctx.config()),
    };
    runner.solve(sorted, root, true)
}

/// Sorts an object file by object x with the external merge sort — the
/// one-time preprocessing retained by
/// [`PreparedDataset`](crate::PreparedDataset).
///
/// The MaxRS transform centers every rectangle at its object, so x-order of
/// the objects is center-x order of the transformed rectangles regardless of
/// the query's rectangle size; one sort therefore serves every subsequent
/// [`Query`](crate::Query) variant.  The input file is left untouched.
pub fn sort_objects_by_x(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
) -> Result<TupleFile<ObjectRecord>> {
    external_sort_by_key(ctx, objects, |r| r.0.point.x).map_err(CoreError::from)
}

/// [`exact_max_rs`] over an object file already sorted by x (see
/// [`sort_objects_by_x`]): the transform stays, the external sort is skipped.
///
/// Answers are bit-identical to [`exact_max_rs`] on the same multiset of
/// objects — the canonical max-region widening (module docs) makes the
/// result independent of how the sweep's input was ordered or partitioned.
pub fn exact_max_rs_presorted(
    ctx: &EmContext,
    sorted_objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    opts: &ExactMaxRsOptions,
) -> Result<MaxRsResult> {
    if sorted_objects.is_empty() {
        return Ok(MaxRsResult::empty());
    }
    let rects = transform_to_rect_file(ctx, sorted_objects, size)?;
    let final_slab = distribution_sweep_presorted(ctx, rects, Interval::UNBOUNDED, opts)?;
    let result = extract_best(ctx, &final_slab)?;
    ctx.delete_file(final_slab)?;
    widen_to_arrangement_cell(ctx, sorted_objects, size, Interval::UNBOUNDED, result)
}

/// The smallest x-arrangement breakpoint strictly greater than `x`: the edge
/// of a transformed rectangle (clipped to `slab`) or the slab's upper bound,
/// whichever comes first; `+∞` when nothing lies beyond `x`.
///
/// These breakpoints are exactly the leaf boundaries of the in-memory plane
/// sweep over `slab` (see [`plane_sweep_slab`]), computed here with one
/// sequential `O(N/B)` scan of the object file instead of materializing the
/// arrangement.  Used to widen distribution-sweep max-intervals back to full
/// arrangement cells.
pub fn next_breakpoint_after(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    slab: Interval,
    x: f64,
) -> Result<f64> {
    let mut best = f64::INFINITY;
    if slab.hi > x {
        best = slab.hi;
    }
    let mut reader = ctx.open_reader(objects);
    while let Some(rec) = reader.next_record()? {
        if let Some(clipped) = rec.0.to_rect(size).clip_x(&slab) {
            for edge in [clipped.x_lo, clipped.x_hi] {
                if edge > x && edge < best {
                    best = edge;
                }
            }
        }
    }
    Ok(best)
}

/// Widens a distribution-sweep result's max-interval to the full arrangement
/// cell so it matches the in-memory sweep's report (module docs, "Canonical
/// max-regions").  The winning `y`-strip and weight are already canonical;
/// only the interval's upper bound (and with it the representative center)
/// can sit on a slab boundary instead of a rectangle edge.
fn widen_to_arrangement_cell(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    slab: Interval,
    result: MaxRsResult,
) -> Result<MaxRsResult> {
    if !result.region.x_lo.is_finite() && !result.region.x_hi.is_finite() {
        // The empty-dataset sentinel; nothing to widen.
        return Ok(result);
    }
    let x_hi = next_breakpoint_after(ctx, objects, size, slab, result.region.x_lo)?;
    let x = Interval::new(result.region.x_lo, x_hi.max(result.region.x_hi));
    Ok(MaxRsResult {
        center: Point::new(x.representative(), result.center.y),
        total_weight: result.total_weight,
        region: Rect::new(x.lo, x.hi, result.region.y_lo, result.region.y_hi),
    })
}

/// Convenience wrapper: loads the objects into the context and runs
/// [`exact_max_rs`].  The temporary object file is removed afterwards.
pub fn exact_max_rs_from_objects(
    ctx: &EmContext,
    objects: &[WeightedPoint],
    size: RectSize,
    opts: &ExactMaxRsOptions,
) -> Result<MaxRsResult> {
    let file = load_objects(ctx, objects)?;
    let result = exact_max_rs(ctx, &file, size, opts);
    ctx.delete_file(file)?;
    result
}

/// Writes a slice of weighted points as an object file in the EM context.
pub fn load_objects(ctx: &EmContext, objects: &[WeightedPoint]) -> Result<TupleFile<ObjectRecord>> {
    let mut writer = ctx.create_writer::<ObjectRecord>()?;
    for o in objects {
        writer.push(&ObjectRecord(*o))?;
    }
    writer.finish().map_err(CoreError::from)
}

/// Streams the object file into a rectangle file (the transformed problem).
///
/// One transform-aware scan ([`EmContext::filter_map_file`]): `O(N/B)` I/Os,
/// no intermediate staging.
pub fn transform_to_rect_file(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<TupleFile<RectRecord>> {
    transform_to_scaled_rect_file(ctx, objects, size, 1.0)
}

/// [`transform_to_rect_file`] with every weight multiplied by `weight_scale`
/// during the scan.  `weight_scale = -1.0` is the MinRS reduction: the
/// maximum of the negated instance is the negated minimum of the original
/// one, so the unmodified MaxRS pipeline answers MinRS queries.
pub fn transform_to_scaled_rect_file(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    weight_scale: f64,
) -> Result<TupleFile<RectRecord>> {
    ctx.map_file(objects, |rec: ObjectRecord| {
        RectRecord::new(rec.0.to_rect(size), weight_scale * rec.0.weight)
    })
    .map_err(CoreError::from)
}

struct Runner<'a> {
    ctx: &'a EmContext,
    opts: ExactMaxRsOptions,
    /// Worker threads available to this recursion node; children run with 1
    /// (the top-level slabs are the coarsest — and therefore best — unit of
    /// parallel work).
    workers: usize,
}

impl<'a> Runner<'a> {
    fn memory_rects(&self) -> usize {
        self.opts
            .memory_rects
            .unwrap_or_else(|| self.ctx.config().mem_records::<RectRecord>())
            .max(4)
    }

    fn fanout(&self) -> usize {
        self.opts
            .fanout
            .unwrap_or_else(|| self.ctx.config().fanout())
            .max(2)
    }

    /// Solves one recursion node: consumes `input` (the rectangles of `slab`)
    /// and returns the slab-file of `slab`.
    fn solve(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
        sorted: bool,
    ) -> Result<TupleFile<SlabTuple>> {
        let n = input.len() as usize;
        if n <= self.memory_rects() {
            return self.solve_in_memory(input, slab);
        }

        // Divide the slab into m sub-slabs with roughly equal rectangle counts.
        let source = if sorted {
            BoundarySource::SortedExact
        } else {
            BoundarySource::Sampled(self.opts.boundary_sample)
        };
        let partition = compute_partition(self.ctx, &input, slab, self.fanout(), source)?;
        if partition.num_slabs() < 2 {
            // Heavy ties on x: no vertical split can make progress.  Fall back
            // to the in-memory sweep (documented guard; never triggered by the
            // paper's workloads).
            return self.solve_in_memory(input, slab);
        }

        let dist = distribute(self.ctx, &input, &partition)?;
        if !self.opts.keep_intermediates {
            self.ctx.delete_file(input)?;
        }

        // Conquer each sub-slab.  `solve_child` guards against the pathological
        // case where a child is as large as its parent (extreme ties on x).
        // With workers to spare, the sub-slabs — independent by construction —
        // are solved concurrently, each child running sequentially inside its
        // worker.  Any failure deletes the files this node still owns —
        // including the span events — so a failed run leaves no orphans on a
        // long-lived context.
        let workers = self.workers.min(partition.num_slabs());
        let merge_result =
            self.conquer_and_combine(dist.slab_inputs, &partition, &dist.span_events, workers, n);
        let merged = match merge_result {
            Ok(merged) => merged,
            Err(e) => {
                let _ = self.ctx.delete_file(dist.span_events);
                return Err(e);
            }
        };
        self.ctx.delete_file(dist.span_events)?;
        Ok(merged)
    }

    /// Solves every sub-slab (in parallel when `workers > 1`) and combines the
    /// child slab-files with the span events.  On failure, all successfully
    /// produced child files are deleted before the error is returned; the
    /// span-events file stays with the caller.
    fn conquer_and_combine(
        &self,
        slab_inputs: Vec<TupleFile<RectRecord>>,
        partition: &crate::slab::SlabPartition,
        span_events: &TupleFile<crate::records::SpanEvent>,
        workers: usize,
        parent_size: usize,
    ) -> Result<TupleFile<SlabTuple>> {
        let outcomes = if workers > 1 {
            let child = Runner {
                ctx: self.ctx,
                opts: self.opts,
                workers: 1,
            };
            parallel_map(workers, slab_inputs, |i, child_input| {
                child.solve_child(child_input, partition.slab(i), parent_size)
            })
        } else {
            slab_inputs
                .into_iter()
                .enumerate()
                .map(|(i, child_input)| {
                    self.solve_child(child_input, partition.slab(i), parent_size)
                })
                .collect()
        };

        let mut child_files = Vec::with_capacity(outcomes.len());
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(file) => child_files.push(file),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            for f in child_files {
                let _ = self.ctx.delete_file(f);
            }
            return Err(e);
        }

        if workers > 1 {
            // Pairwise tree reduction (consumes the child files, cleaning up
            // on its own errors); identical to the flat sweep, see
            // `merge_sweep_tree`.
            merge_sweep_tree(
                self.ctx,
                child_files,
                &partition.slabs(),
                span_events,
                self.workers,
            )
        } else {
            match merge_sweep(self.ctx, &child_files, &partition.slabs(), span_events) {
                Ok(merged) => {
                    for f in child_files {
                        self.ctx.delete_file(f)?;
                    }
                    Ok(merged)
                }
                Err(e) => {
                    for f in child_files {
                        let _ = self.ctx.delete_file(f);
                    }
                    Err(e)
                }
            }
        }
    }

    /// Recurses into a child slab, guarding against pathological inputs where
    /// the child is as large as the parent (possible only under extreme ties);
    /// such children are solved in memory to guarantee termination.
    fn solve_child(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
        parent_size: usize,
    ) -> Result<TupleFile<SlabTuple>> {
        if input.len() as usize >= parent_size && input.len() as usize > self.memory_rects() {
            return self.solve_in_memory(input, slab);
        }
        self.solve(input, slab, false)
    }

    fn solve_in_memory(
        &self,
        input: TupleFile<RectRecord>,
        slab: Interval,
    ) -> Result<TupleFile<SlabTuple>> {
        let rects = self.ctx.read_all(&input)?;
        if !self.opts.keep_intermediates {
            self.ctx.delete_file(input)?;
        }
        let tuples = plane_sweep_slab(&rects, slab);
        let mut writer = self.ctx.create_writer::<SlabTuple>()?;
        for t in &tuples {
            writer.push(t)?;
        }
        writer.finish().map_err(CoreError::from)
    }
}

/// Scans the final slab-file for the best tuple and converts it into a result.
fn extract_best(ctx: &EmContext, slab_file: &TupleFile<SlabTuple>) -> Result<MaxRsResult> {
    let mut reader = ctx.open_reader(slab_file);
    let mut best: Option<SlabTuple> = None;
    let mut best_next_y: Option<f64> = None;
    let mut awaiting_next = false;
    while let Some(t) = reader.next_record()? {
        if awaiting_next {
            best_next_y = Some(t.y);
            awaiting_next = false;
        }
        if best.is_none_or(|b| t.sum > b.sum) {
            best = Some(t);
            best_next_y = None;
            awaiting_next = true;
        }
    }
    let best = match best {
        Some(b) => b,
        None => return Ok(MaxRsResult::empty()),
    };
    let y_lo = best.y;
    let y_hi = best_next_y.filter(|&y| y > y_lo).unwrap_or(y_lo + 1.0);
    let x = best.interval();
    let region = Rect::new(x.lo, x.hi, y_lo, y_hi);
    let center = Point::new(x.representative(), (y_lo + y_hi) / 2.0);
    Ok(MaxRsResult {
        center,
        total_weight: best.sum,
        region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane_sweep::max_rs_in_memory;
    use crate::reference::{brute_force_max_rs, rect_objective};
    use maxrs_em::EmConfig;

    /// A context whose tiny buffer forces real recursion even for small inputs:
    /// 256-byte blocks (6 RectRecords each), 1 KB buffer (25 RectRecords in
    /// memory, fan-out 2).
    fn tiny_ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 1024).unwrap())
    }

    /// A context large enough that everything fits in memory (single base case).
    fn roomy_ctx() -> EmContext {
        EmContext::new(EmConfig::new(4096, 1024 * 1024).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = next() * extent;
                let y = next() * extent;
                let w = 1.0 + (next() * 4.0).floor();
                WeightedPoint::at(x, y, w)
            })
            .collect()
    }

    #[test]
    fn empty_dataset() {
        let ctx = roomy_ctx();
        let r = exact_max_rs_from_objects(&ctx, &[], RectSize::square(10.0), &Default::default())
            .unwrap();
        assert_eq!(r.total_weight, 0.0);
    }

    #[test]
    fn single_object() {
        let ctx = roomy_ctx();
        let objects = vec![WeightedPoint::at(100.0, 200.0, 7.0)];
        let r =
            exact_max_rs_from_objects(&ctx, &objects, RectSize::square(10.0), &Default::default())
                .unwrap();
        assert_eq!(r.total_weight, 7.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(10.0)),
            7.0
        );
    }

    #[test]
    fn matches_in_memory_sweep_when_everything_fits() {
        let ctx = roomy_ctx();
        let objects = pseudo_random_objects(300, 42, 1000.0);
        let size = RectSize::new(120.0, 80.0);
        let external =
            exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }

    #[test]
    fn recursion_matches_in_memory_answer() {
        // Small buffer -> the 400-object input needs several recursion levels.
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(400, 7, 500.0);
        let size = RectSize::square(60.0);
        let external =
            exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }

    #[test]
    fn recursion_matches_brute_force_small() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(60, 99, 100.0);
        for side in [5.0, 20.0, 60.0] {
            let size = RectSize::square(side);
            let external =
                exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
            let brute = brute_force_max_rs(&objects, size);
            assert_eq!(external.total_weight, brute.total_weight, "side={side}");
            assert_eq!(
                rect_objective(&objects, external.center, size),
                external.total_weight,
                "side={side}"
            );
        }
    }

    #[test]
    fn explicit_fanout_and_memory_overrides() {
        let ctx = roomy_ctx();
        let objects = pseudo_random_objects(500, 3, 2000.0);
        let size = RectSize::square(150.0);
        let reference = max_rs_in_memory(&objects, size);
        for (fanout, mem) in [(2, 16), (3, 50), (8, 100), (16, 64)] {
            let opts = ExactMaxRsOptions {
                fanout: Some(fanout),
                memory_rects: Some(mem),
                ..Default::default()
            };
            let r = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
            assert_eq!(
                r.total_weight, reference.total_weight,
                "fanout={fanout} mem={mem}"
            );
        }
    }

    #[test]
    fn duplicated_x_coordinates_do_not_break_recursion() {
        // All objects share one of three x values: slab boundaries collapse and
        // the fallback path must still produce the right answer.
        let ctx = tiny_ctx();
        let mut objects = Vec::new();
        for i in 0..150 {
            let x = [10.0, 20.0, 30.0][i % 3];
            objects.push(WeightedPoint::at(x, i as f64, 1.0));
        }
        let size = RectSize::new(5.0, 400.0);
        let opts = ExactMaxRsOptions {
            memory_rects: Some(20),
            fanout: Some(4),
            ..Default::default()
        };
        let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
        let internal = max_rs_in_memory(&objects, size);
        assert_eq!(external.total_weight, internal.total_weight);
        assert_eq!(external.total_weight, 50.0);
    }

    #[test]
    fn weighted_answer_prefers_heavy_cluster_under_recursion() {
        let ctx = tiny_ctx();
        let mut objects = pseudo_random_objects(200, 11, 1000.0);
        // Heavy cluster far away from the noise.
        for i in 0..5 {
            objects.push(WeightedPoint::at(
                5000.0 + i as f64,
                5000.0 + i as f64,
                100.0,
            ));
        }
        let size = RectSize::square(50.0);
        let r = exact_max_rs_from_objects(&ctx, &objects, size, &Default::default()).unwrap();
        assert_eq!(r.total_weight, 500.0);
        assert!((r.center.x - 5000.0).abs() < 100.0);
    }

    #[test]
    fn temporary_files_are_cleaned_up() {
        let ctx = tiny_ctx();
        let objects = pseudo_random_objects(300, 21, 800.0);
        let file = load_objects(&ctx, &objects).unwrap();
        let _ = exact_max_rs(&ctx, &file, RectSize::square(40.0), &Default::default()).unwrap();
        // Only the input object file may remain on the simulated disk.
        assert!(
            ctx.disk_blocks() <= ctx.config().blocks_for::<ObjectRecord>(file.len()),
            "intermediate files must be deleted ({} blocks remain)",
            ctx.disk_blocks()
        );
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn io_cost_is_near_linear_in_blocks() {
        // With the paper's parameters the recursion has a single level, so the
        // I/O cost must stay within a small constant times N/B.
        let ctx = EmContext::new(EmConfig::new(512, 8 * 512).unwrap());
        let objects = pseudo_random_objects(4000, 5, 100_000.0);
        let file = load_objects(&ctx, &objects).unwrap();
        ctx.reset_stats();
        let _ = exact_max_rs(&ctx, &file, RectSize::square(1000.0), &Default::default()).unwrap();
        let rect_blocks = ctx.config().blocks_for::<RectRecord>(objects.len() as u64);
        let total = ctx.stats().total();
        assert!(
            total < 60 * rect_blocks,
            "ExactMaxRS used {total} I/Os for {rect_blocks} rectangle blocks"
        );
    }
}
