//! Sharded datasets: x-partitioned parallel prepare and shard-routed queries.
//!
//! [`ShardedDataset`] splits the x-domain into `K` coarse shards at
//! boundaries picked by a sampling pass (so the shards hold roughly equal
//! object counts), then ingests and external-sorts every shard **concurrently**
//! on the [`parallel_map`] pool — the one-time `O((N/B) log_{M/B}(N/B))` sort
//! of [`MaxRsEngine::prepare`] becomes `K` independent sorts of `N/K` records
//! each, so prepare wall-clock scales with cores.  Each shard owns its own
//! [`PreparedDataset`] and block device: with [`ShardLayout::directories`]
//! the shards spread over different directories (and hence disks).
//!
//! ## Queries stay exact — and bit-identical
//!
//! A query rectangle can cover objects from several shards, and an *optimal*
//! placement can straddle a shard boundary.  Queries therefore do not solve
//! shards independently and pick the best: they run the **same distribution
//! sweep** the unsharded pipeline runs, with the shard partition as the
//! top-level slab partition:
//!
//! 1. every shard whose objects' rectangles can reach the query's root slab
//!    is scanned (shard routing: a rect-size-inflated root selects the
//!    shards touched), its transformed rectangles cropped against the shard
//!    boundaries exactly like [`distribute`](crate::slab::distribute) —
//!    end pieces go to the two end shards, fully-spanned shards receive a
//!    [`SpanEvent`] pair instead of `O(K)` rectangle copies;
//! 2. each shard solves its cropped rectangle file locally (the ordinary
//!    recursion of [`crate::sweep`], running on the shard's own device);
//! 3. the per-shard slab-files and the y-sorted spanning events merge
//!    through the canonical MergeSweep ([`mod@crate::merge_sweep`]) — the same
//!    span-event decomposition `merge_sweep_tree` uses, reading each
//!    shard's slab-file straight off its own device;
//! 4. the winning tuple is widened to its full arrangement cell
//!    (canonical max-regions, see [`crate::sweep`]) by taking the minimum
//!    next-breakpoint over the shards.
//!
//! Because canonical max-regions are partition-independent, the answers are
//! **bit-identical** to an unsharded [`PreparedDataset::run`] for every
//! [`Query`] variant — with the same caveat as the parallel slab stage: for
//! arbitrary float weights the regrouped additions carry the usual
//! association caveat, for integer-valued weights equality is exact.
//!
//! ```
//! use maxrs_core::{MaxRsEngine, Query, ShardLayout};
//! use maxrs_geometry::{RectSize, WeightedPoint};
//!
//! let objects: Vec<WeightedPoint> = (0..3000)
//!     .map(|i| WeightedPoint::unit((i % 60) as f64 * 5.0, (i / 60) as f64 * 6.0))
//!     .collect();
//! let engine = MaxRsEngine::new();
//! let sharded = engine.prepare_sharded(&objects, &ShardLayout::new(4)).unwrap();
//! assert_eq!(sharded.num_shards(), 4);
//!
//! // Same answer as the unsharded prepared dataset, bit for bit.
//! let query = Query::max_rs(RectSize::square(12.0));
//! let unsharded = engine.prepare(&objects).unwrap();
//! assert_eq!(
//!     sharded.run(&query).unwrap().answer,
//!     unsharded.run(&query).unwrap().answer,
//! );
//! ```

use std::path::PathBuf;

use maxrs_em::{external_sort_by_key, EmContext, FsDisk, IoSnapshot, TupleFile, TupleWriter};
use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::approx::{best_candidate, candidate_points, evaluate_candidates};
use crate::batch::{GroupKind, MemberOut, QueryBatch};
use crate::engine::{EngineOptions, ExecutionStrategy, MaxRsEngine};
use crate::error::Result;
use crate::exact::{load_objects, sort_objects_by_x, ExactMaxRsOptions};
use crate::extensions::{min_rs_in_memory, min_strip_scan, MinStrip};
use crate::merge_sweep::merge_sweep_readers;
use crate::parallel::{available_parallelism, parallel_map};
use crate::prepared::PreparedDataset;
use crate::query::{Query, QueryAnswer, QueryRun};
use crate::records::{ObjectRecord, RectRecord, SlabTuple, SpanEvent};
use crate::result::{MaxCrsResult, MaxRsResult};
use crate::slab::SlabPartition;
use crate::sweep::{extract_best, next_breakpoint_after, solve_rects};

/// How a [`ShardedDataset`] is laid out: how many shards, where their block
/// devices live, and how boundary selection samples the input.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    /// Requested number of x-shards (`K`); at least 1.  Duplicate quantiles
    /// (tie-heavy x) can reduce the actual shard count — see
    /// [`ShardedDataset::num_shards`].
    pub shards: usize,
    /// Directories the shards' devices are created in, assigned round-robin
    /// (`shard i` → `directories[i % len]`), so shards can live on different
    /// disks.  Each shard gets its **own** [`FsDisk`] with a unique file
    /// prefix, so directories may be shared.  Empty (the default) puts every
    /// shard on a fresh device of the configured
    /// [`StorageBackend`](maxrs_em::StorageBackend).
    pub directories: Vec<PathBuf>,
    /// Sampling cap of the boundary-selection pass: datasets up to this size
    /// are quantiled exactly, larger ones through a deterministic reservoir
    /// sample of this size (mirroring
    /// [`BoundarySource::Sampled`](crate::slab::BoundarySource)).
    pub boundary_sample: usize,
}

impl Default for ShardLayout {
    fn default() -> Self {
        ShardLayout {
            shards: available_parallelism(),
            directories: Vec::new(),
            boundary_sample: 8192,
        }
    }
}

impl ShardLayout {
    /// A layout of `shards` shards on the configured backend.
    pub fn new(shards: usize) -> Self {
        ShardLayout {
            shards,
            ..Default::default()
        }
    }

    /// Spreads the shards' devices over `directories`, round-robin.
    pub fn with_directories(mut self, directories: Vec<PathBuf>) -> Self {
        self.directories = directories;
        self
    }

    /// Overrides the boundary-selection sampling cap.
    pub fn with_boundary_sample(mut self, boundary_sample: usize) -> Self {
        self.boundary_sample = boundary_sample.max(1);
        self
    }
}

/// One shard: its prepared (x-sorted, externally stored) objects and the
/// x-interval it owns.
struct Shard {
    data: PreparedDataset<'static>,
    /// `[-∞, b₁)`, `[b₁, b₂)`, …, `[b_{K-1}, +∞)` — objects at a boundary
    /// belong to the right shard, mirroring [`SlabPartition::locate`].
    slab: Interval,
    prepare_io: IoSnapshot,
}

/// A shard's context and retained x-sorted object file, as the sweep
/// machinery consumes them.
type ShardFile<'a> = (&'a EmContext, &'a TupleFile<ObjectRecord>);

/// Phase-1 output of one source shard: per-global-slab rectangle pieces
/// (written on the owning shard's context) plus its spanning events (written
/// on the merge context, unsorted).
struct SourceOut {
    pieces: Vec<Option<TupleFile<RectRecord>>>,
    spans: Option<TupleFile<SpanEvent>>,
}

/// An x-sharded dataset: `K` independently prepared shards answering every
/// [`Query`] variant through one shard-routed distribution sweep — see the
/// [module docs](crate::shard) for the pipeline and the bit-identity
/// guarantee.  Built by [`MaxRsEngine::prepare_sharded`].
pub struct ShardedDataset {
    opts: EngineOptions,
    /// Interior shard boundaries, strictly increasing (`num_shards - 1`).
    boundaries: Vec<f64>,
    shards: Vec<Shard>,
    /// Where spanning events and merged slab-files live: the cross-shard
    /// scratch device.
    merge_ctx: EmContext,
    len: u64,
}

impl std::fmt::Debug for ShardedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDataset")
            .field("len", &self.len)
            .field("shards", &self.shards.len())
            .field("boundaries", &self.boundaries)
            .finish_non_exhaustive()
    }
}

impl MaxRsEngine {
    /// Partitions `objects` into [`ShardLayout::shards`] x-shards (boundaries
    /// picked by a sampling pass so the shards are balanced) and prepares
    /// every shard **concurrently** on the [`parallel_map`] pool — the
    /// parallel counterpart of [`prepare`](MaxRsEngine::prepare), with each
    /// shard external-sorting `~N/K` records on its own block device.
    ///
    /// Answers from the returned [`ShardedDataset`] are bit-identical to the
    /// unsharded [`PreparedDataset`]'s for every query variant (integer
    /// weights; see the [module docs](crate::shard)).
    pub fn prepare_sharded(
        &self,
        objects: &[WeightedPoint],
        layout: &ShardLayout,
    ) -> Result<ShardedDataset> {
        ShardedDataset::prepare(self, objects, layout)
    }
}

impl ShardedDataset {
    pub(crate) fn prepare(
        engine: &MaxRsEngine,
        objects: &[WeightedPoint],
        layout: &ShardLayout,
    ) -> Result<ShardedDataset> {
        let opts = *engine.options();
        let k = layout.shards.max(1);
        let boundaries = select_shard_boundaries(objects, k, layout.boundary_sample);
        let num = boundaries.len() + 1;

        // Route each object to its shard: x on a boundary goes right,
        // mirroring `SlabPartition::locate` (so cross-checks against the
        // sweep's own routing agree on ties).
        let mut parts: Vec<Vec<WeightedPoint>> = (0..num).map(|_| Vec::new()).collect();
        for o in objects {
            let idx = boundaries.partition_point(|&b| b <= o.point.x);
            parts[idx].push(*o);
        }

        let workers = opts.exact.parallelism.max(1).min(num);
        let built = parallel_map(workers, parts, |i, part| {
            build_shard(opts, layout, i, &part)
        });

        let mut shards = Vec::with_capacity(num);
        for (i, outcome) in built.into_iter().enumerate() {
            let (data, prepare_io) = outcome?;
            shards.push(Shard {
                data,
                slab: shard_slab(&boundaries, i),
                prepare_io,
            });
        }
        Ok(ShardedDataset {
            opts,
            boundaries,
            shards,
            merge_ctx: EmContext::new(opts.em_config),
            len: objects.len() as u64,
        })
    }

    /// Total number of objects across all shards.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Actual number of shards: the requested [`ShardLayout::shards`] unless
    /// boundary quantiles collapsed on tie-heavy x (all-equal x yields one
    /// shard, `n < K` distinct values yield at most `n` shards).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The interior shard boundaries, strictly increasing
    /// (`num_shards() - 1` values; shard `i` owns `[b_{i-1}, b_i)`).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Object count per shard, in x-order — the balance the sampling pass
    /// achieved.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.data.len()).collect()
    }

    /// Blocks transferred by the one-time preprocessing, summed over the
    /// shards (each shard's external x-sort plus its flush; loading is
    /// excluded exactly as in [`PreparedDataset::prepare_io`]).
    pub fn prepare_io(&self) -> IoSnapshot {
        self.shards
            .iter()
            .fold(IoSnapshot::default(), |acc, s| acc + s.prepare_io)
    }

    /// Per-shard preprocessing I/O, in x-order.
    pub fn prepare_io_per_shard(&self) -> Vec<IoSnapshot> {
        self.shards.iter().map(|s| s.prepare_io).collect()
    }

    /// The short backend name of the shard devices ("sim", "fs").
    pub fn backend_name(&self) -> &'static str {
        self.shards
            .first()
            .and_then(|s| s.data.backend_name())
            .unwrap_or_else(|| self.merge_ctx.backend_name())
    }

    /// Estimated resident bytes: the retained sorted files of all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.data.resident_bytes()).sum()
    }

    /// Per-shard resident bytes, in x-order — the terms
    /// [`resident_bytes`](ShardedDataset::resident_bytes) sums, exposed so
    /// cache accounting (e.g. the serving registry's memory budget) can be
    /// audited shard by shard.
    pub fn resident_bytes_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.data.resident_bytes())
            .collect()
    }

    /// How many shards `query` routes to: the shards whose objects'
    /// transformed rectangles can reach the query's root slab once it is
    /// inflated by half the rectangle width.  `num_shards()` for the
    /// unbounded-root variants (MaxRS, top-k, ApproxMaxCRS), possibly fewer
    /// for MinRS over a narrow center domain.
    pub fn shards_touched(&self, query: &Query) -> usize {
        let (size, root) = match *query {
            Query::MaxRs { size } | Query::TopK { size, .. } => (size, Interval::UNBOUNDED),
            Query::MinRs { size, domain } => (size, Interval::new(domain.x_lo, domain.x_hi)),
            Query::ApproxMaxCrs { diameter, .. } => {
                (RectSize::square(diameter), Interval::UNBOUNDED)
            }
        };
        self.engaged_sources(size, root).len()
    }

    /// Answers one query — see [`run_batch`](ShardedDataset::run_batch).
    pub fn run(&self, query: &Query) -> Result<QueryRun> {
        let mut runs = self.run_batch(std::slice::from_ref(query))?;
        Ok(runs.pop().expect("one query in, one run out"))
    }

    /// Validates and plans `queries` into sweep groups, then answers them —
    /// the sharded counterpart of [`PreparedDataset::run_batch`], with the
    /// same grouping and the same per-variant answers.
    pub fn run_batch(&self, queries: &[Query]) -> Result<Vec<QueryRun>> {
        self.run_planned(&QueryBatch::new(queries)?)
    }

    /// Executes an already planned batch: groups run one after another (so
    /// per-query I/O attribution uses plain counter deltas over all shard
    /// devices), while **within** every sweep phase the shards run
    /// concurrently on the [`parallel_map`] pool.
    pub fn run_planned(&self, batch: &QueryBatch) -> Result<Vec<QueryRun>> {
        let workers = self.opts.exact.parallelism.max(1).min(self.shards.len());
        let strategy = if workers > 1 {
            ExecutionStrategy::ExternalParallel
        } else {
            ExecutionStrategy::ExternalSequential
        };
        let files = self.shard_files();

        let mut runs: Vec<Option<QueryRun>> = batch.queries().iter().map(|_| None).collect();
        for group in batch.groups() {
            let outs = match group.kind {
                GroupKind::Shared { size } => {
                    self.run_shared_group(&files, size, &group.members, batch)?
                }
                GroupKind::MinRs { size, slab } => {
                    self.run_min_rs_group(&files, size, slab, &group.members, batch)?
                }
                GroupKind::DegenerateMinRs => {
                    self.run_degenerate_min_rs(&files, group.members[0], batch)?
                }
            };
            for m in outs {
                runs[m.index] = Some(QueryRun {
                    answer: m.answer,
                    strategy,
                    workers,
                    io: m.io,
                });
            }
        }
        Ok(runs
            .into_iter()
            .map(|r| r.expect("every query belongs to exactly one group"))
            .collect())
    }

    // ---- internals -------------------------------------------------------

    fn shard_files(&self) -> Vec<ShardFile<'_>> {
        self.shards
            .iter()
            .map(|s| s.data.external_parts().expect("shards are always external"))
            .collect()
    }

    /// Transfers across every shard device plus the merge device — the
    /// dataset-wide counter the query phases meter against.
    fn stats_total(&self) -> IoSnapshot {
        self.shards
            .iter()
            .filter_map(|s| s.data.external_parts())
            .fold(self.merge_ctx.stats(), |acc, (ctx, _)| acc + ctx.stats())
    }

    fn measured<R>(&self, f: impl FnOnce() -> Result<R>) -> Result<(R, IoSnapshot)> {
        let before = self.stats_total();
        let out = f()?;
        Ok((out, self.stats_total().delta(&before)))
    }

    fn phase_workers(&self, n: usize) -> usize {
        self.opts.exact.parallelism.max(1).min(n.max(1))
    }

    /// The source shards whose objects' rectangles can reach `root`: shard
    /// slab inflated by half the rectangle width, kept unless **strictly**
    /// out of reach (degenerate touching stays in, so boundary ties are
    /// routed exactly like the unsharded sweep clips them).
    fn engaged_sources(&self, size: RectSize, root: Interval) -> Vec<usize> {
        let half = size.width / 2.0;
        (0..self.shards.len())
            .filter(|&i| {
                let s = self.shards[i].slab;
                !(s.hi + half < root.lo || s.lo - half > root.hi)
            })
            .collect()
    }

    /// The top-level slab partition of a sharded sweep: the shard boundaries
    /// that fall strictly inside `root`, with `root`'s own bounds as the
    /// outer walls.  Every global slab is owned by exactly one shard.
    fn clipped_partition(&self, root: Interval) -> SlabPartition {
        let mut bounds = Vec::with_capacity(self.boundaries.len() + 2);
        bounds.push(root.lo);
        for &b in &self.boundaries {
            if b > root.lo && b < root.hi {
                bounds.push(b);
            }
        }
        bounds.push(root.hi);
        SlabPartition::new(bounds)
    }

    /// Which shard owns each global slab of `partition`.
    fn slab_owners(&self, partition: &SlabPartition) -> Vec<usize> {
        (0..partition.num_slabs())
            .map(|t| {
                self.boundaries
                    .partition_point(|&b| b <= partition.boundaries[t])
                    .min(self.shards.len() - 1)
            })
            .collect()
    }

    /// The sharded distribution sweep for one `(size, weight_scale, root)`
    /// pass: distribute (per source shard, concurrent) → solve (per global
    /// slab inside its owner shard, concurrent) → MergeSweep over per-shard
    /// readers.  Returns the merged root slab-file on the merge context.
    fn sharded_slab_file(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        weight_scale: f64,
        root: Interval,
    ) -> Result<TupleFile<SlabTuple>> {
        let partition = self.clipped_partition(root);
        let owners = self.slab_owners(&partition);
        let m = partition.num_slabs();
        let engaged = self.engaged_sources(size, root);

        // Phase 1 — shard routing: every engaged source crops its rectangles
        // against the global partition, writing end pieces into the owner
        // shards' devices and span-event pairs onto the merge device.
        let outs = parallel_map(self.phase_workers(engaged.len()), engaged, |_, s| {
            self.distribute_source(files, s, &partition, &owners, size, weight_scale)
        });
        let mut sources: Vec<SourceOut> = Vec::with_capacity(outs.len());
        let mut first_err = None;
        for out in outs {
            match out {
                Ok(o) => sources.push(o),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            for src in sources {
                self.discard_source_out(files, &owners, src);
            }
            return Err(e);
        }

        // Phase 2 — per-shard solves: concatenate each global slab's pieces
        // (fixed source order keeps the stream deterministic) and run the
        // ordinary recursion inside the owner shard.
        let slab_outs = parallel_map(self.phase_workers(m), (0..m).collect(), |_, t| {
            self.solve_slab(files, &owners, &partition, t, &sources)
        });
        let mut slab_files: Vec<TupleFile<SlabTuple>> = Vec::with_capacity(m);
        let mut first_err = None;
        for out in slab_outs {
            match out {
                Ok(f) => slab_files.push(f),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        let spans = if first_err.is_none() {
            match self.collect_spans(&sources) {
                Ok(f) => Some(f),
                Err(e) => {
                    first_err = Some(e);
                    None
                }
            }
        } else {
            for src in &sources {
                if let Some(f) = &src.spans {
                    let _ = self.merge_ctx.delete_file(f.clone());
                }
            }
            None
        };
        if let Some(e) = first_err {
            for (t, f) in slab_files.into_iter().enumerate() {
                let _ = files[owners[t]].0.delete_file(f);
            }
            if let Some(f) = spans {
                let _ = self.merge_ctx.delete_file(f);
            }
            return Err(e);
        }
        let spans = spans.expect("span file collected");

        // Phase 3 — MergeSweep straight over per-shard readers: each reader
        // borrows only the device its slab-file lives on.
        let slabs = partition.slabs();
        let readers = slab_files
            .iter()
            .enumerate()
            .map(|(t, f)| files[owners[t]].0.open_reader(f))
            .collect();
        let span_reader = self.merge_ctx.open_reader(&spans);
        let merged = merge_sweep_readers(&self.merge_ctx, readers, &slabs, span_reader);

        for (t, f) in slab_files.into_iter().enumerate() {
            let delete = files[owners[t]].0.delete_file(f);
            if merged.is_ok() {
                delete?;
            }
        }
        let delete = self.merge_ctx.delete_file(spans);
        if merged.is_ok() {
            delete?;
        }
        merged
    }

    /// Phase 1 for one source shard: the exact cropping rule of
    /// [`distribute`](crate::slab::distribute), streamed from the shard's
    /// sorted objects with the transform fused in.
    fn distribute_source(
        &self,
        files: &[ShardFile<'_>],
        source: usize,
        partition: &SlabPartition,
        owners: &[usize],
        size: RectSize,
        weight_scale: f64,
    ) -> Result<SourceOut> {
        let m = partition.num_slabs();
        let (src_ctx, src_file) = files[source];
        let mut writers: Vec<Option<TupleWriter<'_, RectRecord>>> = (0..m).map(|_| None).collect();
        let mut span_writer: Option<TupleWriter<'_, SpanEvent>> = None;

        let mut reader = src_ctx.open_reader(src_file);
        let body = (|| -> Result<()> {
            while let Some(rec) = reader.next_record()? {
                let record = RectRecord::new(rec.0.to_rect(size), weight_scale * rec.0.weight);
                let j = partition.locate(record.rect.x_lo);
                let k = partition.locate(record.rect.x_hi);
                if j == k {
                    push_piece(files, owners, &mut writers, j, &record)?;
                } else {
                    let left = RectRecord::new(
                        Rect::new(
                            record.rect.x_lo,
                            partition.boundaries[j + 1],
                            record.rect.y_lo,
                            record.rect.y_hi,
                        ),
                        record.weight,
                    );
                    push_piece(files, owners, &mut writers, j, &left)?;
                    let right = RectRecord::new(
                        Rect::new(
                            partition.boundaries[k],
                            record.rect.x_hi,
                            record.rect.y_lo,
                            record.rect.y_hi,
                        ),
                        record.weight,
                    );
                    push_piece(files, owners, &mut writers, k, &right)?;
                    if k > j + 1 {
                        let writer = match span_writer.as_mut() {
                            Some(w) => w,
                            None => {
                                span_writer.insert(self.merge_ctx.create_writer::<SpanEvent>()?)
                            }
                        };
                        for e in SpanEvent::pair(
                            record.rect.y_lo,
                            record.rect.y_hi,
                            record.weight,
                            (j + 1) as u32,
                            (k - 1) as u32,
                        ) {
                            writer.push(&e)?;
                        }
                    }
                }
            }
            Ok(())
        })();

        // Materialize every writer even on error, so cleanup deals with real
        // files instead of leaking half-written ones on long-lived devices.
        let mut first_err = body.err();
        let mut pieces: Vec<Option<TupleFile<RectRecord>>> = Vec::with_capacity(m);
        for w in writers {
            match w {
                Some(w) => match w.finish() {
                    Ok(f) => pieces.push(Some(f)),
                    Err(e) => {
                        first_err = first_err.or(Some(e.into()));
                        pieces.push(None);
                    }
                },
                None => pieces.push(None),
            }
        }
        let spans = match span_writer {
            Some(w) => match w.finish() {
                Ok(f) => Some(f),
                Err(e) => {
                    first_err = first_err.or(Some(e.into()));
                    None
                }
            },
            None => None,
        };
        let out = SourceOut { pieces, spans };
        match first_err {
            Some(e) => {
                self.discard_source_out(files, owners, out);
                Err(e)
            }
            None => Ok(out),
        }
    }

    fn discard_source_out(&self, files: &[ShardFile<'_>], owners: &[usize], out: SourceOut) {
        for (t, f) in out.pieces.into_iter().enumerate() {
            if let Some(f) = f {
                let _ = files[owners[t]].0.delete_file(f);
            }
        }
        if let Some(f) = out.spans {
            let _ = self.merge_ctx.delete_file(f);
        }
    }

    /// Phase 2 for one global slab: concatenate its pieces in source order on
    /// the owner shard's device and run the ordinary (sequential, sampled-
    /// boundary) recursion there — exactly what the unsharded parallel slab
    /// stage does per child.
    fn solve_slab(
        &self,
        files: &[ShardFile<'_>],
        owners: &[usize],
        partition: &SlabPartition,
        t: usize,
        sources: &[SourceOut],
    ) -> Result<TupleFile<SlabTuple>> {
        let ctx = files[owners[t]].0;
        let mut writer = ctx.create_writer::<RectRecord>()?;
        for src in sources {
            if let Some(f) = &src.pieces[t] {
                let mut reader = ctx.open_reader(f);
                while let Some(rec) = reader.next_record()? {
                    writer.push(&rec)?;
                }
            }
        }
        let rects = writer.finish()?;
        for src in sources {
            if let Some(f) = &src.pieces[t] {
                ctx.delete_file(f.clone())?;
            }
        }
        let opts = ExactMaxRsOptions {
            parallelism: 1,
            ..self.opts.exact
        };
        solve_rects(ctx, &opts, rects, partition.slab(t), false, 1)
    }

    /// Concatenates the per-source span files in source order and y-sorts the
    /// result on the merge device — the sharded mirror of the span sort in
    /// [`distribute`](crate::slab::distribute).
    fn collect_spans(&self, sources: &[SourceOut]) -> Result<TupleFile<SpanEvent>> {
        let mut writer = self.merge_ctx.create_writer::<SpanEvent>()?;
        for src in sources {
            if let Some(f) = &src.spans {
                let mut reader = self.merge_ctx.open_reader(f);
                while let Some(e) = reader.next_record()? {
                    writer.push(&e)?;
                }
            }
        }
        let unsorted = writer.finish()?;
        for src in sources {
            if let Some(f) = &src.spans {
                let _ = self.merge_ctx.delete_file(f.clone());
            }
        }
        let sorted = external_sort_by_key(&self.merge_ctx, &unsorted, |e| e.y);
        self.merge_ctx.delete_file(unsorted)?;
        Ok(sorted?)
    }

    /// The full sharded MaxRS pipeline over the given per-shard files:
    /// sweep → extract → canonicalize, all temporaries deleted.
    fn sharded_max_rs(&self, files: &[ShardFile<'_>], size: RectSize) -> Result<MaxRsResult> {
        if files.iter().all(|(_, f)| f.is_empty()) {
            return Ok(MaxRsResult::empty());
        }
        let merged = self.sharded_slab_file(files, size, 1.0, Interval::UNBOUNDED)?;
        let result = extract_best(&self.merge_ctx, &merged);
        self.merge_ctx.delete_file(merged)?;
        self.canonicalize(files, size, Interval::UNBOUNDED, result?)
    }

    /// Stage 4b of the kernel, sharded: the arrangement breakpoint after the
    /// winning interval's lower bound is the **minimum** of the per-shard
    /// breakpoints — each shard scans only its own objects, together exactly
    /// the one-file scan of [`SweepPass::canonicalize`](crate::sweep::SweepPass).
    fn canonicalize(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        root: Interval,
        result: MaxRsResult,
    ) -> Result<MaxRsResult> {
        if !result.region.x_lo.is_finite() && !result.region.x_hi.is_finite() {
            // The empty-dataset sentinel; nothing to widen.
            return Ok(result);
        }
        let mut hi = f64::INFINITY;
        for &(ctx, file) in files {
            hi = hi.min(next_breakpoint_after(
                ctx,
                file,
                size,
                root,
                result.region.x_lo,
            )?);
        }
        let x = Interval::new(result.region.x_lo, hi.max(result.region.x_hi));
        Ok(MaxRsResult {
            center: Point::new(x.representative(), result.center.y),
            total_weight: result.total_weight,
            region: Rect::new(x.lo, x.hi, result.region.y_lo, result.region.y_hi),
        })
    }

    /// The positive-weight group (MaxRS / top-k / ApproxMaxCRS of one size):
    /// the sharded mirror of the batch executor's shared group, same sharing
    /// and same leader I/O attribution.
    fn run_shared_group(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        members: &[usize],
        batch: &QueryBatch,
    ) -> Result<Vec<MemberOut>> {
        let queries = batch.queries();
        let max_k = members
            .iter()
            .filter_map(|&i| match queries[i] {
                Query::TopK { k, .. } => Some(k),
                _ => None,
            })
            .max();
        let needs_pass = members
            .iter()
            .any(|&i| !matches!(queries[i], Query::TopK { k, .. } if k == 0));
        if !needs_pass || self.len == 0 {
            return members
                .iter()
                .map(|&i| {
                    let answer = match queries[i] {
                        Query::MaxRs { .. } => QueryAnswer::MaxRs(MaxRsResult::empty()),
                        Query::TopK { .. } => QueryAnswer::TopK(Vec::new()),
                        Query::ApproxMaxCrs { .. } => QueryAnswer::MaxCrs(MaxCrsResult::empty()),
                        Query::MinRs { .. } => unreachable!("MinRS plans into its own group"),
                    };
                    Ok(MemberOut {
                        index: i,
                        answer,
                        io: IoSnapshot::default(),
                    })
                })
                .collect();
        }

        let (best, shared_io) = self.measured(|| self.sharded_max_rs(files, size))?;
        let (rounds, rounds_io) = match max_k {
            Some(max_k) if max_k > 0 => {
                self.measured(|| self.top_k_rounds(files, size, max_k, best))?
            }
            _ => (Vec::new(), IoSnapshot::default()),
        };

        let mut out = Vec::with_capacity(members.len());
        let mut shared_io = Some(shared_io);
        let mut rounds_io = Some(rounds_io);
        for &i in members {
            let (answer, mut io) = match queries[i] {
                Query::MaxRs { .. } => (QueryAnswer::MaxRs(best), IoSnapshot::default()),
                Query::TopK { k, .. } => (
                    QueryAnswer::TopK(rounds[..k.min(rounds.len())].to_vec()),
                    rounds_io.take().unwrap_or_default(),
                ),
                Query::ApproxMaxCrs { diameter, .. } => {
                    let sigma = queries[i]
                        .sigma_fraction()
                        .expect("approx variant has a sigma");
                    let (crs, refine_io) =
                        self.measured(|| self.refine_crs(files, best.center, diameter, sigma))?;
                    (QueryAnswer::MaxCrs(crs), refine_io)
                }
                Query::MinRs { .. } => unreachable!("MinRS plans into its own group"),
            };
            io = io + shared_io.take().unwrap_or_default();
            out.push(MemberOut {
                index: i,
                answer,
                io,
            });
        }
        Ok(out)
    }

    /// Steps 2–3 of ApproxMaxCRS over the shards: each shard scans its own
    /// objects for the five candidates' partial sums, accumulated in shard
    /// (= x) order so the stream matches the unsharded single-file scan.
    fn refine_crs(
        &self,
        files: &[ShardFile<'_>],
        p0: Point,
        diameter: f64,
        sigma_fraction: f64,
    ) -> Result<MaxCrsResult> {
        let candidates = candidate_points(p0, diameter, sigma_fraction);
        let mut totals = vec![0.0f64; candidates.len()];
        for &(ctx, file) in files {
            let sums = evaluate_candidates(ctx, file, &candidates, diameter)?;
            for (t, s) in totals.iter_mut().zip(sums) {
                *t += s;
            }
        }
        Ok(best_candidate(&candidates, &totals))
    }

    /// Greedy top-k suppression rounds, sharded: the per-round filter runs on
    /// each shard's file (preserving per-shard x-order and the shard routing
    /// itself), the per-round MaxRS is the full sharded pipeline — the same
    /// rounds as the unsharded executor, shard-parallel.
    fn top_k_rounds(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        max_k: usize,
        first_best: MaxRsResult,
    ) -> Result<Vec<MaxRsResult>> {
        let mut results = Vec::with_capacity(max_k.min(self.len as usize));
        let mut current: Option<Vec<TupleFile<ObjectRecord>>> = None;
        let outcome =
            self.top_k_rounds_inner(files, size, max_k, first_best, &mut results, &mut current);
        // The last suppression files are temporaries either way.
        if let Some(fs) = current.take() {
            for (&(ctx, _), f) in files.iter().zip(fs) {
                let _ = ctx.delete_file(f);
            }
        }
        outcome.map(|()| results)
    }

    fn top_k_rounds_inner(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        max_k: usize,
        first_best: MaxRsResult,
        results: &mut Vec<MaxRsResult>,
        current: &mut Option<Vec<TupleFile<ObjectRecord>>>,
    ) -> Result<()> {
        for round in 0..max_k {
            let remaining: Vec<ShardFile<'_>> = match current {
                Some(fs) => files
                    .iter()
                    .zip(fs.iter())
                    .map(|(&(ctx, _), f)| (ctx, f))
                    .collect(),
                None => files.to_vec(),
            };
            if remaining.iter().all(|(_, f)| f.is_empty()) {
                break;
            }
            let best = if round == 0 {
                first_best
            } else {
                self.sharded_max_rs(&remaining, size)?
            };
            if best.total_weight <= 0.0 {
                break;
            }
            let chosen = Rect::centered_at(best.center, size);
            let mut next = Vec::with_capacity(files.len());
            for &(ctx, f) in &remaining {
                next.push(ctx.filter_map_file(f, |rec: ObjectRecord| {
                    if chosen.contains_open(&rec.0.point) {
                        None
                    } else {
                        Some(rec)
                    }
                })?);
            }
            if let Some(fs) = current.take() {
                for (&(ctx, _), f) in files.iter().zip(fs) {
                    ctx.delete_file(f)?;
                }
            }
            *current = Some(next);
            results.push(best);
        }
        Ok(())
    }

    /// The MinRS group, sharded: one weight-negated pass with the domain
    /// x-slab as root (only the shards it touches participate), then the
    /// same per-member strip scans and canonical finalization as the batch
    /// executor.
    fn run_min_rs_group(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        slab: Interval,
        members: &[usize],
        batch: &QueryBatch,
    ) -> Result<Vec<MemberOut>> {
        let queries = batch.queries();
        let domain_of = |i: usize| match queries[i] {
            Query::MinRs { domain, .. } => domain,
            _ => unreachable!("MinRS groups hold MinRS queries"),
        };
        if self.len == 0 {
            return Ok(members
                .iter()
                .map(|&i| {
                    let domain = domain_of(i);
                    MemberOut {
                        index: i,
                        answer: QueryAnswer::MinRs(MaxRsResult {
                            center: domain.center(),
                            total_weight: 0.0,
                            region: domain,
                        }),
                        io: IoSnapshot::default(),
                    }
                })
                .collect());
        }

        let (slab_file, shared_io) =
            self.measured(|| self.sharded_slab_file(files, size, -1.0, slab))?;

        let mut scans: Vec<(usize, Option<MinStrip>, IoSnapshot)> =
            Vec::with_capacity(members.len());
        let mut scan_err = None;
        for &i in members {
            let domain = domain_of(i);
            let scanned = self.measured(|| {
                let mut reader = self.merge_ctx.open_reader(&slab_file);
                let tuples = std::iter::from_fn(|| match reader.next_record() {
                    Ok(Some(t)) => Some(Ok(t)),
                    Ok(None) => None,
                    Err(e) => Some(Err(e.into())),
                });
                min_strip_scan(tuples, slab, domain)
            });
            match scanned {
                Ok((best, io)) => scans.push((i, best, io)),
                Err(e) => {
                    scan_err = Some(e);
                    break;
                }
            }
        }
        self.merge_ctx.delete_file(slab_file)?;
        if let Some(e) = scan_err {
            return Err(e);
        }

        let mut out = Vec::with_capacity(scans.len());
        let mut shared_io = Some(shared_io);
        for (i, best, scan_io) in scans {
            let domain = domain_of(i);
            let (result, finalize_io) =
                self.measured(|| self.finalize_min_rs(files, size, slab, domain, best))?;
            out.push(MemberOut {
                index: i,
                answer: QueryAnswer::MinRs(result),
                io: scan_io + finalize_io + shared_io.take().unwrap_or_default(),
            });
        }
        Ok(out)
    }

    /// The sharded mirror of the batch executor's MinRS finalization, with
    /// the breakpoint widening taking the minimum over the shards.
    fn finalize_min_rs(
        &self,
        files: &[ShardFile<'_>],
        size: RectSize,
        slab: Interval,
        domain: Rect,
        best: Option<MinStrip>,
    ) -> Result<MaxRsResult> {
        match best {
            None => {
                // Defensive mirror of the in-memory fallback: evaluate the
                // domain center directly with one scan per shard.
                let center = domain.center();
                let query_rect = Rect::centered_at(center, size);
                let mut total = 0.0;
                for &(ctx, file) in files {
                    let mut reader = ctx.open_reader(file);
                    while let Some(rec) = reader.next_record()? {
                        if query_rect.contains_open(&rec.0.point) {
                            total += rec.0.weight;
                        }
                    }
                }
                Ok(MaxRsResult {
                    center,
                    total_weight: total,
                    region: domain,
                })
            }
            Some((negated_sum, x, y, from_tuple)) => {
                let x = if from_tuple {
                    let mut hi = f64::INFINITY;
                    for &(ctx, file) in files {
                        hi = hi.min(next_breakpoint_after(ctx, file, size, slab, x.lo)?);
                    }
                    Interval::new(x.lo, hi.max(x.hi))
                } else {
                    x
                };
                let center = Point::new(
                    x.representative().clamp(domain.x_lo, domain.x_hi),
                    y.representative().clamp(domain.y_lo, domain.y_hi),
                );
                Ok(MaxRsResult {
                    center,
                    // `0.0 - x` so an uncovered minimum reports +0.0 (mirrors
                    // `min_rs_in_memory`).
                    total_weight: 0.0 - negated_sum,
                    region: Rect::new(x.lo, x.hi, y.lo, y.hi),
                })
            }
        }
    }

    /// Degenerate-domain MinRS: concatenate the shards' records in shard
    /// (= x) order and delegate to the in-memory reference, exactly like the
    /// unsharded executor's one-scan delegate.
    fn run_degenerate_min_rs(
        &self,
        files: &[ShardFile<'_>],
        index: usize,
        batch: &QueryBatch,
    ) -> Result<Vec<MemberOut>> {
        let (size, domain) = match batch.queries()[index] {
            Query::MinRs { size, domain } => (size, domain),
            _ => unreachable!("degenerate groups hold MinRS queries"),
        };
        let (answer, io) = self.measured(|| {
            if self.len == 0 {
                return Ok(MaxRsResult {
                    center: domain.center(),
                    total_weight: 0.0,
                    region: domain,
                });
            }
            let mut points: Vec<WeightedPoint> = Vec::with_capacity(self.len as usize);
            for &(ctx, file) in files {
                let records = ctx.read_all(file)?;
                points.extend(records.iter().map(|r| r.0));
            }
            Ok(min_rs_in_memory(&points, size, domain))
        })?;
        Ok(vec![MemberOut {
            index,
            answer: QueryAnswer::MinRs(answer),
            io,
        }])
    }
}

/// Lazily opens the piece writer of global slab `t` on its owner's device.
fn push_piece<'a>(
    files: &[ShardFile<'a>],
    owners: &[usize],
    writers: &mut [Option<TupleWriter<'a, RectRecord>>],
    t: usize,
    record: &RectRecord,
) -> Result<()> {
    let writer = match writers[t].as_mut() {
        Some(w) => w,
        None => {
            let w = files[owners[t]].0.create_writer::<RectRecord>()?;
            writers[t].insert(w)
        }
    };
    writer.push(record)?;
    Ok(())
}

/// Builds one shard of a [`ShardedDataset`], resolving its directory from
/// the layout's round-robin assignment.
fn build_shard(
    opts: EngineOptions,
    layout: &ShardLayout,
    index: usize,
    objects: &[WeightedPoint],
) -> Result<(PreparedDataset<'static>, IoSnapshot)> {
    let dir = if layout.directories.is_empty() {
        None
    } else {
        Some(layout.directories[index % layout.directories.len()].as_path())
    };
    prepare_shard(opts, dir, objects)
}

/// Prepares one shard on its own context (optionally on a dedicated
/// directory): load, external x-sort, flush — the per-shard body of
/// [`MaxRsEngine::prepare`], measured identically (loading excluded).  The
/// shard is always stored externally, so its
/// [`external_parts`](PreparedDataset::external_parts) are available to
/// sweep machinery spanning several shards — this is the building block both
/// [`ShardedDataset`] and the remote shard servers of `maxrs-cluster` build
/// their shards with.
pub fn prepare_shard(
    opts: EngineOptions,
    directory: Option<&std::path::Path>,
    objects: &[WeightedPoint],
) -> Result<(PreparedDataset<'static>, IoSnapshot)> {
    let ctx = match directory {
        None => Box::new(EmContext::new(opts.em_config)),
        Some(dir) => {
            let disk = FsDisk::new_in(dir, opts.em_config.block_size)?;
            Box::new(EmContext::with_device(opts.em_config, Box::new(disk)))
        }
    };
    let raw = load_objects(&ctx, objects)?;
    let before = ctx.stats();
    let sorted = sort_objects_by_x(&ctx, &raw)?;
    ctx.delete_file(raw)?;
    ctx.flush_file(&sorted)?;
    let prepare_io = ctx.stats().since(&before);
    Ok((
        PreparedDataset::from_sorted_owned(opts, ctx, sorted, prepare_io),
        prepare_io,
    ))
}

/// The x-interval shard `i` owns, given the interior boundaries: shard 0
/// owns `(-∞, b₁)`, the last shard `[b_{K-1}, +∞)`, and objects exactly on a
/// boundary belong to the shard on its right (mirroring
/// [`SlabPartition::locate`]).
pub fn shard_slab(boundaries: &[f64], i: usize) -> Interval {
    let lo = if i == 0 {
        f64::NEG_INFINITY
    } else {
        boundaries[i - 1]
    };
    let hi = if i == boundaries.len() {
        f64::INFINITY
    } else {
        boundaries[i]
    };
    Interval::new(lo, hi)
}

/// Picks up to `k - 1` strictly increasing interior boundaries from the
/// x-quantiles of a deterministic sample, so the shards hold roughly equal
/// object counts even on skewed inputs.  Datasets within the sampling cap
/// are quantiled exactly; larger ones go through the same xorshift reservoir
/// idiom as [`compute_partition`](crate::slab::compute_partition), so the
/// result is a pure function of the input.  Shared by [`ShardedDataset`] and
/// the cluster layer, so a remote partition splits exactly like a local one.
pub fn select_shard_boundaries(objects: &[WeightedPoint], k: usize, sample_cap: usize) -> Vec<f64> {
    if k <= 1 || objects.len() < 2 {
        return Vec::new();
    }
    let cap = sample_cap.max(k * 4);
    let mut sample: Vec<f64> = if objects.len() <= cap {
        objects.iter().map(|o| o.point.x).collect()
    } else {
        let mut state =
            0x9E3779B97F4A7C15u64 ^ (objects.len() as u64).wrapping_mul(0x2545F4914F6CDD1D);
        let mut next_rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sample = Vec::with_capacity(cap);
        for (seen, o) in objects.iter().enumerate() {
            if sample.len() < cap {
                sample.push(o.point.x);
            } else {
                let j = (next_rand() % (seen as u64 + 1)) as usize;
                if j < cap {
                    sample[j] = o.point.x;
                }
            }
        }
        sample
    };
    sample.sort_unstable_by(f64::total_cmp);
    let len = sample.len();
    // Quantile boundaries, deduplicated to a strictly increasing run; a
    // boundary at the global minimum would leave an empty leading shard
    // (objects at a boundary go right), so `last` starts there.
    let mut boundaries = Vec::with_capacity(k - 1);
    let mut last = sample[0];
    for i in 1..k {
        let b = sample[(i * len / k).min(len - 1)];
        if b > last {
            boundaries.push(b);
            last = b;
        }
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_em::EmConfig;

    fn small_engine() -> MaxRsEngine {
        MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 32 * 512).unwrap(),
            exact: ExactMaxRsOptions::default(),
            force_strategy: None,
        })
    }

    fn grid_objects(n: usize) -> Vec<WeightedPoint> {
        (0..n)
            .map(|i| WeightedPoint::unit((i % 97) as f64 * 3.0, (i / 97) as f64 * 2.0))
            .collect()
    }

    fn ratio(lens: &[u64]) -> f64 {
        let max = *lens.iter().max().unwrap() as f64;
        let min = *lens.iter().min().unwrap() as f64;
        max / min.max(1.0)
    }

    #[test]
    fn boundaries_balance_clustered_input() {
        // Three tight clusters of very different mass: equal-width splits
        // would starve two shards; quantile splits keep counts balanced.
        let objects = maxrs_datagen::clustered(6_000, 1_000.0, 11);
        let engine = small_engine();
        let layout = ShardLayout::new(4).with_boundary_sample(16_384);
        let sharded = engine.prepare_sharded(&objects, &layout).unwrap();
        assert_eq!(sharded.num_shards(), 4);
        let lens = sharded.shard_lens();
        assert_eq!(lens.iter().sum::<u64>(), 6_000);
        assert!(
            ratio(&lens) <= 1.5,
            "clustered split unbalanced: {lens:?} (ratio {})",
            ratio(&lens)
        );
    }

    #[test]
    fn boundaries_balance_zipf_input() {
        let objects = maxrs_datagen::zipf_x(6_000, 1_000.0, 1.1, 13);
        let engine = small_engine();
        let layout = ShardLayout::new(4).with_boundary_sample(16_384);
        let sharded = engine.prepare_sharded(&objects, &layout).unwrap();
        let lens = sharded.shard_lens();
        assert_eq!(lens.iter().sum::<u64>(), 6_000);
        // Zipf x has heavy duplicate mass at the hot values; everything that
        // shares an x must share a shard, so allow a looser bound.
        assert!(
            sharded.num_shards() >= 2,
            "zipf input should still split: {lens:?}"
        );
        assert!(
            ratio(&lens) <= 4.0,
            "zipf split unbalanced: {lens:?} (ratio {})",
            ratio(&lens)
        );
    }

    #[test]
    fn all_equal_x_collapses_to_one_shard() {
        let objects: Vec<WeightedPoint> = (0..500)
            .map(|i| WeightedPoint::unit(42.0, i as f64))
            .collect();
        let sharded = small_engine()
            .prepare_sharded(&objects, &ShardLayout::new(8))
            .unwrap();
        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.shard_lens(), vec![500]);
        assert!(sharded.boundaries().is_empty());
    }

    #[test]
    fn fewer_objects_than_shards() {
        let objects = vec![
            WeightedPoint::unit(1.0, 0.0),
            WeightedPoint::unit(2.0, 0.0),
            WeightedPoint::unit(3.0, 0.0),
        ];
        let sharded = small_engine()
            .prepare_sharded(&objects, &ShardLayout::new(16))
            .unwrap();
        assert!(sharded.num_shards() <= 3, "{} shards", sharded.num_shards());
        assert_eq!(sharded.len(), 3);
        assert_eq!(sharded.shard_lens().iter().sum::<u64>(), 3);
    }

    #[test]
    fn k1_layout_matches_unsharded_answers() {
        let objects = grid_objects(1_500);
        let engine = small_engine();
        let sharded = engine
            .prepare_sharded(&objects, &ShardLayout::new(1))
            .unwrap();
        assert_eq!(sharded.num_shards(), 1);
        let prepared = engine.prepare(&objects).unwrap();
        let query = Query::max_rs(RectSize::square(10.0));
        assert_eq!(
            sharded.run(&query).unwrap().answer,
            prepared.run(&query).unwrap().answer
        );
    }

    #[test]
    fn empty_dataset_answers_all_variants() {
        let sharded = small_engine()
            .prepare_sharded(&[], &ShardLayout::new(4))
            .unwrap();
        assert!(sharded.is_empty());
        assert_eq!(sharded.num_shards(), 1);
        let domain = Rect::new(0.0, 10.0, 0.0, 10.0);
        let runs = sharded
            .run_batch(&[
                Query::max_rs(RectSize::square(2.0)),
                Query::top_k(RectSize::square(2.0), 3),
                Query::min_rs(RectSize::square(2.0), domain),
                Query::approx_max_crs(2.0),
            ])
            .unwrap();
        assert_eq!(runs[0].answer, QueryAnswer::MaxRs(MaxRsResult::empty()));
        assert_eq!(runs[1].answer, QueryAnswer::TopK(Vec::new()));
        assert_eq!(runs[2].answer.as_max_rs().unwrap().center, domain.center());
        assert_eq!(runs[3].answer, QueryAnswer::MaxCrs(MaxCrsResult::empty()));
    }

    #[test]
    fn shards_touched_routes_min_rs_by_domain() {
        let objects = grid_objects(4_000);
        let sharded = small_engine()
            .prepare_sharded(&objects, &ShardLayout::new(4))
            .unwrap();
        assert_eq!(sharded.num_shards(), 4);
        // Unbounded-root variants touch every shard.
        assert_eq!(
            sharded.shards_touched(&Query::max_rs(RectSize::square(4.0))),
            4
        );
        // A narrow MinRS domain reaches only the shards near it.
        let narrow = Rect::new(0.0, 1.0, 0.0, 50.0);
        let touched = sharded.shards_touched(&Query::min_rs(RectSize::square(4.0), narrow));
        assert!(touched < 4, "narrow domain touched all {touched} shards");
        assert!(touched >= 1);
    }

    #[test]
    fn directories_layout_puts_shards_on_fs_devices() {
        let tmp = std::env::temp_dir().join(format!(
            "maxrs-shard-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let objects = grid_objects(1_200);
        let engine = small_engine();
        let layout = ShardLayout::new(2).with_directories(vec![tmp.clone()]);
        let sharded = engine.prepare_sharded(&objects, &layout).unwrap();
        assert_eq!(sharded.backend_name(), "fs");
        assert!(tmp.exists(), "shard directory was not created");
        let query = Query::max_rs(RectSize::square(9.0));
        let prepared = engine.prepare(&objects).unwrap();
        assert_eq!(
            sharded.run(&query).unwrap().answer,
            prepared.run(&query).unwrap().answer
        );
        drop(sharded);
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
