//! On-disk record formats used by the external-memory algorithms.

use maxrs_em::{codec, Record};
use maxrs_geometry::{Interval, Point, Rect, WeightedPoint};

/// A dataset object stored in an EM file: location plus weight (24 bytes, so
/// a 4 KB block holds 170 objects, matching the `B` of the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectRecord(pub WeightedPoint);

impl ObjectRecord {
    /// Creates an object record.
    pub fn new(x: f64, y: f64, weight: f64) -> Self {
        ObjectRecord(WeightedPoint::at(x, y, weight))
    }

    /// The wrapped weighted point.
    pub fn object(&self) -> WeightedPoint {
        self.0
    }
}

impl From<WeightedPoint> for ObjectRecord {
    fn from(o: WeightedPoint) -> Self {
        ObjectRecord(o)
    }
}

impl Record for ObjectRecord {
    const SIZE: usize = 24;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.0.point.x);
        codec::put_f64(buf, 8, self.0.point.y);
        codec::put_f64(buf, 16, self.0.weight);
    }

    fn decode(buf: &[u8]) -> Self {
        ObjectRecord(WeightedPoint::at(
            codec::get_f64(buf, 0),
            codec::get_f64(buf, 8),
            codec::get_f64(buf, 16),
        ))
    }
}

/// A weighted rectangle: the transformed representation of an object (`r_o` in
/// the paper), or a piece of one produced by slab cropping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectRecord {
    /// Geometric extent of the rectangle.
    pub rect: Rect,
    /// Weight carried by the rectangle (the original object's weight).
    pub weight: f64,
}

impl RectRecord {
    /// Creates a weighted rectangle record.
    pub fn new(rect: Rect, weight: f64) -> Self {
        RectRecord { rect, weight }
    }

    /// Center x-coordinate — the sort key of the distribution sweep.
    pub fn center_x(&self) -> f64 {
        (self.rect.x_lo + self.rect.x_hi) / 2.0
    }
}

impl Record for RectRecord {
    const SIZE: usize = 40;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.rect.x_lo);
        codec::put_f64(buf, 8, self.rect.x_hi);
        codec::put_f64(buf, 16, self.rect.y_lo);
        codec::put_f64(buf, 24, self.rect.y_hi);
        codec::put_f64(buf, 32, self.weight);
    }

    fn decode(buf: &[u8]) -> Self {
        RectRecord {
            rect: Rect::new(
                codec::get_f64(buf, 0),
                codec::get_f64(buf, 8),
                codec::get_f64(buf, 16),
                codec::get_f64(buf, 24),
            ),
            weight: codec::get_f64(buf, 32),
        }
    }
}

/// One tuple `⟨y, [x1, x2], sum⟩` of a slab-file: on any horizontal line with
/// a y-coordinate strictly between this tuple's `y` and the next tuple's `y`,
/// `[x1, x2]` is a max-interval of the slab and `sum` is its location-weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabTuple {
    /// y-coordinate of the h-line defining the tuple.
    pub y: f64,
    /// Lower x bound of the max-interval (may be `-∞`).
    pub x_lo: f64,
    /// Upper x bound of the max-interval (may be `+∞`).
    pub x_hi: f64,
    /// Location-weight of every point of the max-interval.
    pub sum: f64,
}

impl SlabTuple {
    /// Creates a slab tuple.
    pub fn new(y: f64, x_lo: f64, x_hi: f64, sum: f64) -> Self {
        SlabTuple { y, x_lo, x_hi, sum }
    }

    /// The max-interval as an [`Interval`].
    pub fn interval(&self) -> Interval {
        Interval::new(self.x_lo, self.x_hi)
    }
}

impl Record for SlabTuple {
    const SIZE: usize = 32;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.y);
        codec::put_f64(buf, 8, self.x_lo);
        codec::put_f64(buf, 16, self.x_hi);
        codec::put_f64(buf, 24, self.sum);
    }

    fn decode(buf: &[u8]) -> Self {
        SlabTuple {
            y: codec::get_f64(buf, 0),
            x_lo: codec::get_f64(buf, 8),
            x_hi: codec::get_f64(buf, 16),
            sum: codec::get_f64(buf, 24),
        }
    }
}

/// A sweep event produced by a *spanning* rectangle: at `y` the rectangle
/// starts (or stops) covering every slab with index in `[slab_lo, slab_hi]`.
///
/// The spanning rectangles of a recursion node are stored as two such events
/// each, sorted by `y`, so that MergeSweep can consume them in sweep order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// y-coordinate of the event.
    pub y: f64,
    /// Weight of the spanning rectangle.
    pub weight: f64,
    /// First slab index (inclusive) fully spanned.
    pub slab_lo: u32,
    /// Last slab index (inclusive) fully spanned.
    pub slab_hi: u32,
    /// `true` for the bottom edge (weight is added), `false` for the top edge
    /// (weight is removed).
    pub is_start: bool,
}

impl SpanEvent {
    /// Creates the pair of events for a rectangle of the given weight spanning
    /// slabs `[slab_lo, slab_hi]` between `y_lo` and `y_hi`.
    pub fn pair(y_lo: f64, y_hi: f64, weight: f64, slab_lo: u32, slab_hi: u32) -> [SpanEvent; 2] {
        [
            SpanEvent {
                y: y_lo,
                weight,
                slab_lo,
                slab_hi,
                is_start: true,
            },
            SpanEvent {
                y: y_hi,
                weight,
                slab_lo,
                slab_hi,
                is_start: false,
            },
        ]
    }

    /// The signed weight contribution of this event.
    pub fn delta(&self) -> f64 {
        if self.is_start {
            self.weight
        } else {
            -self.weight
        }
    }
}

impl Record for SpanEvent {
    const SIZE: usize = 28;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.y);
        codec::put_f64(buf, 8, self.weight);
        codec::put_u32(buf, 16, self.slab_lo);
        codec::put_u32(buf, 20, self.slab_hi);
        codec::put_u32(buf, 24, u32::from(self.is_start));
    }

    fn decode(buf: &[u8]) -> Self {
        SpanEvent {
            y: codec::get_f64(buf, 0),
            weight: codec::get_f64(buf, 8),
            slab_lo: codec::get_u32(buf, 16),
            slab_hi: codec::get_u32(buf, 20),
            is_start: codec::get_u32(buf, 24) != 0,
        }
    }
}

/// Converts a slice of weighted points into object records.
pub fn to_object_records(objects: &[WeightedPoint]) -> Vec<ObjectRecord> {
    objects.iter().copied().map(ObjectRecord).collect()
}

/// Converts object records back into weighted points.
pub fn to_weighted_points(records: &[ObjectRecord]) -> Vec<WeightedPoint> {
    records.iter().map(|r| r.0).collect()
}

/// Convenience: a point-like accessor used by the sweep code.
pub fn record_point(r: &ObjectRecord) -> Point {
    r.0.point
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_geometry::RectSize;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn object_record_roundtrip() {
        roundtrip(ObjectRecord::new(1.5, -2.5, 3.0));
        roundtrip(ObjectRecord::new(0.0, 0.0, 0.0));
        let o = WeightedPoint::at(7.0, 8.0, 9.0);
        let r: ObjectRecord = o.into();
        assert_eq!(r.object(), o);
        assert_eq!(record_point(&r), Point::new(7.0, 8.0));
    }

    #[test]
    fn rect_record_roundtrip_and_center() {
        let rect = WeightedPoint::at(10.0, 20.0, 2.0).to_rect(RectSize::new(4.0, 6.0));
        let rr = RectRecord::new(rect, 2.0);
        roundtrip(rr);
        assert_eq!(rr.center_x(), 10.0);
    }

    #[test]
    fn slab_tuple_roundtrip_with_infinities() {
        roundtrip(SlabTuple::new(5.0, f64::NEG_INFINITY, 3.0, 2.0));
        roundtrip(SlabTuple::new(f64::NEG_INFINITY, -1.0, 1.0, 0.0));
        let t = SlabTuple::new(0.0, 1.0, 4.0, 7.0);
        assert_eq!(t.interval(), Interval::new(1.0, 4.0));
    }

    #[test]
    fn span_event_roundtrip_and_delta() {
        let [start, end] = SpanEvent::pair(1.0, 5.0, 2.5, 3, 7);
        roundtrip(start);
        roundtrip(end);
        assert_eq!(start.delta(), 2.5);
        assert_eq!(end.delta(), -2.5);
        assert_eq!(start.slab_lo, 3);
        assert_eq!(end.slab_hi, 7);
        assert!(start.is_start);
        assert!(!end.is_start);
    }

    #[test]
    fn record_conversions() {
        let objects = vec![
            WeightedPoint::at(1.0, 2.0, 3.0),
            WeightedPoint::at(4.0, 5.0, 6.0),
        ];
        let recs = to_object_records(&objects);
        assert_eq!(recs.len(), 2);
        assert_eq!(to_weighted_points(&recs), objects);
    }
}
