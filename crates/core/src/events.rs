//! The dynamic-data event model and its **one** canonical application
//! semantics.
//!
//! Two engines in this workspace consume streams of timestamped
//! [`Event`]s: the in-memory incremental engine (`maxrs-stream`'s
//! `StreamEngine`) and the external-memory delta-main dataset
//! ([`DeltaDataset`](crate::DeltaDataset)).  Both must agree — exactly — on
//! the fiddly rules that make replays deterministic:
//!
//! * the clock is the running **maximum** of all seen timestamps (an
//!   out-of-order event is processed *at* the current clock, never turning
//!   time backwards),
//! * a non-finite timestamp is a checked error raised **before** the clock
//!   advances,
//! * sliding-window expiry removes an object once `now >= expires_at`
//!   (lifetime `[t, t + window)`), processed while advancing the clock and
//!   **before** the event's own effect,
//! * an insert validates its payload (finite coordinates, finite
//!   non-negative weight), then checks for a duplicate id
//!   ([`EventError::DuplicateId`] — the clock advance and its expirations
//!   stick even when the insert itself errors), then normalizes a `-0.0`
//!   weight to `+0.0` so every value has one bit pattern,
//! * deleting an id that is not alive is a **no-op** reported through
//!   [`EventOutcome::applied`], so window-agnostic producers can replay one
//!   stream into windowed and unwindowed consumers.
//!
//! [`LiveSet`] owns those rules.  Engines either call
//! [`LiveSet::apply`] wholesale or compose the split steps
//! ([`check_insert`](LiveSet::check_insert) /
//! [`commit_insert`](LiveSet::commit_insert)) when they need to interpose an
//! engine-specific check between validation and commitment — the stream
//! engine's grid-range guard does exactly that.  A cross-engine equivalence
//! test replays one event sequence into both engines and asserts identical
//! survivor sets, so the semantics cannot drift apart again.

use std::collections::{BTreeMap, HashMap};

use maxrs_geometry::WeightedPoint;

/// One record of a dynamic-data stream.
///
/// Every event carries a timestamp `at` in the stream's logical time unit.
/// A consumer's clock is the running maximum of all seen timestamps, so an
/// out-of-order event is processed *at* the current clock rather than turning
/// time backwards (sliding-window expiry is monotone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A new object enters the dataset.
    Insert {
        /// Caller-chosen identifier, used by later deletes.  Reusing the id
        /// of a live object is an error; reusing the id of a deleted or
        /// expired object is fine.
        id: u64,
        /// The object itself (location + non-negative weight).
        object: WeightedPoint,
        /// Event timestamp.
        at: f64,
    },
    /// An object leaves the dataset.  Deleting an id that is not alive
    /// (never inserted, already deleted, or already expired by the sliding
    /// window) is a no-op, so window-agnostic producers can replay the same
    /// stream into windowed and unwindowed engines.
    Delete {
        /// Identifier of the object to remove.
        id: u64,
        /// Event timestamp.
        at: f64,
    },
    /// A pure clock advance: no object changes hands, but a sliding window
    /// may expire objects up to this timestamp.
    Tick {
        /// Event timestamp.
        at: f64,
    },
}

impl Event {
    /// Convenience constructor for an insert.
    pub fn insert(id: u64, x: f64, y: f64, weight: f64, at: f64) -> Self {
        Event::Insert {
            id,
            object: WeightedPoint::at(x, y, weight),
            at,
        }
    }

    /// Convenience constructor for a delete.
    pub fn delete(id: u64, at: f64) -> Self {
        Event::Delete { id, at }
    }

    /// Convenience constructor for a tick.
    pub fn tick(at: f64) -> Self {
        Event::Tick { at }
    }

    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match *self {
            Event::Insert { at, .. } | Event::Delete { at, .. } | Event::Tick { at } => at,
        }
    }

    /// A short human-readable name ("insert", "delete", "tick").
    pub fn name(&self) -> &'static str {
        match self {
            Event::Insert { .. } => "insert",
            Event::Delete { .. } => "delete",
            Event::Tick { .. } => "tick",
        }
    }
}

/// What applying one [`Event`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventOutcome {
    /// `false` only for a delete whose id was not alive (a documented no-op).
    pub applied: bool,
    /// Objects expired by the sliding window while advancing to the event's
    /// timestamp.
    pub expired: usize,
}

/// Errors of the canonical event semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// An event or configuration parameter is invalid (non-finite timestamp
    /// or coordinate, negative weight, non-positive window, …).
    InvalidParameter(String),
    /// An insert reused the id of an object that is still alive.
    DuplicateId(u64),
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EventError::DuplicateId(id) => {
                write!(f, "insert reuses id {id} of a live object")
            }
        }
    }
}

impl std::error::Error for EventError {}

/// Validates one inserted object (finite coordinates, finite non-negative
/// weight) so no NaN can enter an engine's ordered indexes.
pub fn validate_object(x: f64, y: f64, weight: f64) -> Result<(), EventError> {
    if !(x.is_finite() && y.is_finite()) {
        return Err(EventError::InvalidParameter(format!(
            "object coordinates must be finite, got ({x}, {y})"
        )));
    }
    if !(weight.is_finite() && weight >= 0.0) {
        return Err(EventError::InvalidParameter(format!(
            "object weight must be finite and non-negative, got {weight}"
        )));
    }
    Ok(())
}

/// An `(id, object)` pair reported by [`LiveSet`] mutations — an expired or
/// deleted object leaving the set, or a (normalized) object entering it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveRecord {
    /// The object's caller-chosen identifier.
    pub id: u64,
    /// The object as stored (insert weights normalized, see
    /// [`LiveSet::check_insert`]).
    pub object: WeightedPoint,
}

/// Everything one [`LiveSet::apply`] call changed, for consumers that
/// maintain derived structures (grids, deltas, tombstones) next to the set.
#[derive(Debug, Clone, PartialEq)]
pub struct EventReport {
    /// The outcome summary ([`EventOutcome::applied`] / count of expired).
    pub outcome: EventOutcome,
    /// Window-expired objects removed while advancing the clock, in expiry
    /// order.
    pub expired: Vec<LiveRecord>,
    /// The object a delete removed (`None` for a no-op delete or a
    /// non-delete event).
    pub deleted: Option<LiveRecord>,
    /// The normalized object an insert added (`None` for non-inserts).
    pub inserted: Option<LiveRecord>,
}

#[derive(Debug, Clone, Copy)]
struct LiveEntry {
    object: WeightedPoint,
    /// Insertion sequence number; [`LiveSet::survivors`] reports objects in
    /// this order so replays see the same slice a batch caller would build.
    seq: u64,
    expires_at: Option<f64>,
}

/// Maps a finite `f64` to a `u64` whose unsigned order matches the float
/// order (the `total_cmp` bit trick) — used for the expiry queue here, for
/// the x-ordered delta index in [`crate::delta`], and as the `NaN`-free float
/// key encoding of [`crate::frontier::FrontierMap`].
pub fn total_order_bits(t: f64) -> u64 {
    let bits = t.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn time_key(t: f64) -> u64 {
    total_order_bits(t)
}

/// The canonical live-object set of the event model: ids, the monotone
/// stream clock and sliding-window expiry, with **exactly** the
/// duplicate-insert / unknown-delete / window-clamp rules documented on
/// [this module](self).
///
/// ```
/// use maxrs_core::{Event, LiveSet};
///
/// let mut live = LiveSet::new(Some(10.0)).unwrap();
/// live.apply(&Event::insert(1, 0.0, 0.0, 2.0, 0.0)).unwrap();
/// live.apply(&Event::insert(2, 5.0, 5.0, 1.0, 3.0)).unwrap();
///
/// // Unknown deletes are no-ops, reported through `applied`.
/// let report = live.apply(&Event::delete(99, 4.0)).unwrap();
/// assert!(!report.outcome.applied);
///
/// // At t = 10 the first object's lifetime [0, 10) is over.
/// let report = live.apply(&Event::tick(10.0)).unwrap();
/// assert_eq!(report.outcome.expired, 1);
/// assert!(!live.contains(1) && live.contains(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LiveSet {
    /// Sliding-window length (`None`: objects live until deleted).
    window: Option<f64>,
    /// The stream clock: running maximum of all seen timestamps.
    now: f64,
    entries: HashMap<u64, LiveEntry>,
    /// Pending expirations ordered by (expiry time, id); values are the raw
    /// expiry timestamps.
    expiry: BTreeMap<(u64, u64), f64>,
    /// Next insertion sequence number.
    seq: u64,
}

impl LiveSet {
    /// Creates an empty set, with or without a sliding window.  A window
    /// must be positive and finite.
    pub fn new(window: Option<f64>) -> Result<Self, EventError> {
        if let Some(w) = window {
            if !(w > 0.0 && w.is_finite()) {
                return Err(EventError::InvalidParameter(format!(
                    "sliding window must be positive and finite, got {w}"
                )));
            }
        }
        Ok(LiveSet {
            window,
            now: f64::NEG_INFINITY,
            ..LiveSet::default()
        })
    }

    /// The configured sliding-window length.
    pub fn window(&self) -> Option<f64> {
        self.window
    }

    /// The stream clock (`-∞` before the first event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of live (inserted, not deleted, not expired) objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no object is alive.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when `id` refers to a live object.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// The live object stored under `id`.
    pub fn get(&self, id: u64) -> Option<&WeightedPoint> {
        self.entries.get(&id).map(|e| &e.object)
    }

    /// The ids of the live objects, in no particular order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }

    /// The live objects in insertion order — exactly the slice a batch
    /// engine would be given to answer the same question.
    pub fn survivors(&self) -> Vec<WeightedPoint> {
        let mut with_seq: Vec<(u64, WeightedPoint)> =
            self.entries.values().map(|e| (e.seq, e.object)).collect();
        with_seq.sort_by_key(|&(seq, _)| seq);
        with_seq.into_iter().map(|(_, o)| o).collect()
    }

    /// Advances the clock to `at` (never backwards), expiring every windowed
    /// object whose lifetime ended; returns the expired objects in expiry
    /// order.  A non-finite timestamp is an error raised **before** the
    /// clock moves.
    pub fn advance(&mut self, at: f64) -> Result<Vec<LiveRecord>, EventError> {
        if !at.is_finite() {
            return Err(EventError::InvalidParameter(format!(
                "event timestamp must be finite, got {at}"
            )));
        }
        if at > self.now {
            self.now = at;
        }
        let mut expired = Vec::new();
        while let Some((&(_, id), &exp)) = self.expiry.first_key_value() {
            // An object is alive while `now < expires_at`.
            if exp > self.now {
                break;
            }
            let removed = self.remove(id).expect("expiry queue references live ids");
            expired.push(removed);
        }
        Ok(expired)
    }

    /// The validation half of an insert: checks the payload (finite
    /// coordinates, finite non-negative weight), rejects a duplicate live
    /// id, and returns the object with a `-0.0` weight normalized to `+0.0`
    /// (one bit pattern per value, so downstream orderings of raw weight
    /// bits are sound).  **Does not mutate the set** — callers interpose
    /// their own checks and then [`commit_insert`](LiveSet::commit_insert)
    /// the returned object, or use [`insert`](LiveSet::insert) for both
    /// halves at once.
    pub fn check_insert(
        &self,
        id: u64,
        object: WeightedPoint,
    ) -> Result<WeightedPoint, EventError> {
        validate_object(object.point.x, object.point.y, object.weight)?;
        if self.entries.contains_key(&id) {
            return Err(EventError::DuplicateId(id));
        }
        Ok(WeightedPoint {
            point: object.point,
            weight: object.weight + 0.0,
        })
    }

    /// The mutation half of an insert: stores an object
    /// [`check_insert`](LiveSet::check_insert) already vetted, assigning its
    /// sequence number and window expiry (`now + window`).
    pub fn commit_insert(&mut self, id: u64, object: WeightedPoint) {
        debug_assert!(
            !self.entries.contains_key(&id),
            "commit_insert requires a prior check_insert"
        );
        let seq = self.seq;
        self.seq += 1;
        let expires_at = self.window.map(|w| self.now + w);
        if let Some(exp) = expires_at {
            self.expiry.insert((time_key(exp), id), exp);
        }
        self.entries.insert(
            id,
            LiveEntry {
                object,
                seq,
                expires_at,
            },
        );
    }

    /// Validates and stores an object:
    /// [`check_insert`](LiveSet::check_insert) +
    /// [`commit_insert`](LiveSet::commit_insert).  Returns the normalized
    /// object as stored.
    pub fn insert(&mut self, id: u64, object: WeightedPoint) -> Result<WeightedPoint, EventError> {
        let object = self.check_insert(id, object)?;
        self.commit_insert(id, object);
        Ok(object)
    }

    /// Removes a live object, returning it; `None` when `id` is not alive
    /// (the documented delete no-op).
    pub fn remove(&mut self, id: u64) -> Option<LiveRecord> {
        let entry = self.entries.remove(&id)?;
        if let Some(exp) = entry.expires_at {
            self.expiry.remove(&(time_key(exp), id));
        }
        Some(LiveRecord {
            id,
            object: entry.object,
        })
    }

    /// Applies one event under the canonical semantics: the timestamp check,
    /// the clock advance with its expirations, then the event's own effect.
    /// Errors leave the set unchanged **except** for the clock advance (and
    /// any expirations it triggered) — exactly the contract engines must
    /// share.
    pub fn apply(&mut self, event: &Event) -> Result<EventReport, EventError> {
        let expired = self.advance(event.at())?;
        let mut report = EventReport {
            outcome: EventOutcome {
                applied: true,
                expired: expired.len(),
            },
            expired,
            deleted: None,
            inserted: None,
        };
        match *event {
            Event::Insert { id, object, .. } => {
                let object = self.check_insert(id, object)?;
                self.commit_insert(id, object);
                report.inserted = Some(LiveRecord { id, object });
            }
            Event::Delete { id, .. } => match self.remove(id) {
                Some(removed) => report.deleted = Some(removed),
                None => report.outcome.applied = false,
            },
            Event::Tick { .. } => {}
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_constructors_and_accessors() {
        let e = Event::insert(3, 1.0, 2.0, 4.0, 10.0);
        assert_eq!(e.at(), 10.0);
        assert_eq!(e.name(), "insert");
        if let Event::Insert { id, object, .. } = e {
            assert_eq!(id, 3);
            assert_eq!(object.weight, 4.0);
        } else {
            panic!("not an insert");
        }
        assert_eq!(Event::delete(3, 11.0).name(), "delete");
        assert_eq!(Event::tick(12.0).at(), 12.0);
        assert_eq!(Event::tick(12.0).name(), "tick");
    }

    #[test]
    fn object_validation() {
        assert!(validate_object(1.0, 2.0, 0.0).is_ok());
        assert!(validate_object(f64::NAN, 2.0, 1.0).is_err());
        assert!(validate_object(1.0, f64::INFINITY, 1.0).is_err());
        assert!(validate_object(1.0, 2.0, -1.0).is_err());
        assert!(validate_object(1.0, 2.0, f64::NAN).is_err());
    }

    #[test]
    fn duplicate_insert_errors_after_the_clock_advance() {
        let mut live = LiveSet::new(Some(5.0)).unwrap();
        live.apply(&Event::insert(1, 0.0, 0.0, 1.0, 0.0)).unwrap();
        // The duplicate's timestamp still advances the clock and expires the
        // original before the duplicate check can even see it: the insert
        // then SUCCEEDS — dup-checking happens after expiry, by design.
        let report = live.apply(&Event::insert(1, 1.0, 1.0, 1.0, 10.0)).unwrap();
        assert_eq!(report.outcome.expired, 1);
        assert!(report.inserted.is_some());
        // A true duplicate (both alive) errors, and the clock still sticks.
        let err = live.apply(&Event::insert(1, 2.0, 2.0, 1.0, 12.0));
        assert_eq!(err, Err(EventError::DuplicateId(1)));
        assert_eq!(live.now(), 12.0);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn unknown_delete_is_a_noop() {
        let mut live = LiveSet::new(None).unwrap();
        let report = live.apply(&Event::delete(7, 0.0)).unwrap();
        assert!(!report.outcome.applied);
        assert!(report.deleted.is_none());
    }

    #[test]
    fn clock_is_monotone_and_windows_clamp() {
        let mut live = LiveSet::new(Some(5.0)).unwrap();
        live.apply(&Event::insert(1, 0.0, 0.0, 1.0, 10.0)).unwrap();
        assert_eq!(live.now(), 10.0);
        // Out-of-order: processed at the clamped clock, so the window starts
        // at 10, not 4.
        live.apply(&Event::insert(2, 1.0, 1.0, 1.0, 4.0)).unwrap();
        assert_eq!(live.now(), 10.0);
        live.apply(&Event::tick(14.9)).unwrap();
        assert_eq!(live.len(), 2);
        let report = live.apply(&Event::tick(15.0)).unwrap();
        assert_eq!(report.outcome.expired, 2);
        assert!(live.is_empty());
    }

    #[test]
    fn non_finite_timestamps_are_rejected_before_the_clock_moves() {
        let mut live = LiveSet::new(None).unwrap();
        live.apply(&Event::tick(3.0)).unwrap();
        assert!(live.apply(&Event::tick(f64::INFINITY)).is_err());
        assert!(live.apply(&Event::tick(f64::NAN)).is_err());
        assert_eq!(live.now(), 3.0);
    }

    #[test]
    fn negative_zero_weights_are_normalized() {
        let mut live = LiveSet::new(None).unwrap();
        let stored = live
            .insert(
                1,
                WeightedPoint {
                    point: maxrs_geometry::Point::new(0.0, 0.0),
                    weight: -0.0,
                },
            )
            .unwrap();
        assert_eq!(stored.weight.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn survivors_come_back_in_insertion_order() {
        let mut live = LiveSet::new(None).unwrap();
        for (i, x) in [5.0, 1.0, 9.0].iter().enumerate() {
            live.apply(&Event::insert(i as u64, *x, 0.0, 1.0, i as f64))
                .unwrap();
        }
        live.apply(&Event::delete(1, 3.0)).unwrap();
        let xs: Vec<f64> = live.survivors().iter().map(|o| o.point.x).collect();
        assert_eq!(xs, vec![5.0, 9.0]);
        assert_eq!(live.ids().count(), 2);
        assert_eq!(live.get(0).unwrap().point.x, 5.0);
        assert!(live.get(1).is_none());
    }

    #[test]
    fn invalid_window_is_rejected() {
        assert!(LiveSet::new(Some(0.0)).is_err());
        assert!(LiveSet::new(Some(f64::NAN)).is_err());
        assert!(LiveSet::new(Some(f64::INFINITY)).is_err());
        assert!(LiveSet::new(Some(1.0)).is_ok());
    }

    #[test]
    fn expired_ids_can_be_reused() {
        let mut live = LiveSet::new(Some(2.0)).unwrap();
        live.apply(&Event::insert(1, 0.0, 0.0, 1.0, 0.0)).unwrap();
        live.apply(&Event::tick(5.0)).unwrap();
        assert!(live.apply(&Event::insert(1, 1.0, 1.0, 1.0, 6.0)).is_ok());
        assert_eq!(live.len(), 1);
    }
}
