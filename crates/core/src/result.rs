//! Result types returned by the MaxRS / MaxCRS algorithms.

use maxrs_geometry::{Point, Rect, Weight};

/// Result of a MaxRS query.
///
/// The optimal placement is not a single point but a whole *max-region*: every
/// center inside [`region`](MaxRsResult::region) covers the same (maximum)
/// total weight.  [`center`](MaxRsResult::center) is a representative interior
/// point of that region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxRsResult {
    /// A point of the max-region: an optimal center for the query rectangle.
    pub center: Point,
    /// The maximum achievable range sum.
    pub total_weight: Weight,
    /// The max-region: the set of optimal centers found by the algorithm
    /// (x-bounds may be infinite when the dataset is empty).
    pub region: Rect,
}

impl MaxRsResult {
    /// A result describing an empty dataset (weight 0 everywhere).
    pub fn empty() -> Self {
        MaxRsResult {
            center: Point::ORIGIN,
            total_weight: 0.0,
            region: Rect::new(
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
            ),
        }
    }
}

/// Result of a MaxCRS query (exact or approximate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxCrsResult {
    /// The chosen circle center.
    pub center: Point,
    /// Total weight covered by the circle centered at `center`.
    pub total_weight: Weight,
}

impl MaxCrsResult {
    /// A result describing an empty dataset.
    pub fn empty() -> Self {
        MaxCrsResult {
            center: Point::ORIGIN,
            total_weight: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_results() {
        let r = MaxRsResult::empty();
        assert_eq!(r.total_weight, 0.0);
        assert_eq!(r.center, Point::ORIGIN);
        assert!(r.region.x_lo.is_infinite());
        let c = MaxCrsResult::empty();
        assert_eq!(c.total_weight, 0.0);
    }

    #[test]
    fn result_construction() {
        let r = MaxRsResult {
            center: Point::new(1.0, 2.0),
            total_weight: 5.0,
            region: Rect::new(0.0, 2.0, 1.0, 3.0),
        };
        assert!(r.region.contains_closed(&r.center));
        let c = MaxCrsResult {
            center: Point::new(3.0, 4.0),
            total_weight: 2.0,
        };
        assert_eq!(c.center, Point::new(3.0, 4.0));
    }
}
