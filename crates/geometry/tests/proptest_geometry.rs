//! Property-based tests of the geometric primitives.

use maxrs_geometry::{Circle, Interval, Point, Rect, RectSize, WeightedPoint};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    (-1.0e6..1.0e6f64).prop_map(|v| (v * 16.0).round() / 16.0)
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn interval() -> impl Strategy<Value = Interval> {
    (finite_coord(), finite_coord()).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

fn rect() -> impl Strategy<Value = Rect> {
    (
        finite_coord(),
        finite_coord(),
        finite_coord(),
        finite_coord(),
    )
        .prop_map(|(a, b, c, d)| Rect::new(a.min(b), a.max(b), c.min(d), c.max(d)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distances_form_a_metric(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(&b) >= 0.0);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        prop_assert_eq!(a.distance(&a), 0.0);
        // Triangle inequality with a numerical slack.
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
        // Norm orderings: L-inf <= L2 <= L1.
        prop_assert!(a.linf_distance(&b) <= a.distance(&b) + 1e-9);
        prop_assert!(a.distance(&b) <= a.l1_distance(&b) + 1e-9);
    }

    #[test]
    fn interval_intersection_is_commutative_and_contained(a in interval(), b in interval()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_interval(&i));
            prop_assert!(b.contains_interval(&i));
            prop_assert!(i.length() <= a.length() + 1e-9);
        } else {
            prop_assert!(!a.intersects(&b));
        }
        // Hull always contains both inputs.
        let hull = a.hull(&b);
        prop_assert!(hull.contains_interval(&a) && hull.contains_interval(&b));
    }

    #[test]
    fn rect_intersection_properties(a in rect(), b in rect()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
                prop_assert!(i.area() <= a.area().min(b.area()) + 1e-6);
                prop_assert!(a.intersects(&b));
            }
            None => prop_assert!(!a.intersects(&b)),
        }
        let hull = a.hull(&b);
        prop_assert!(hull.contains_rect(&a) && hull.contains_rect(&b));
        prop_assert!(hull.area() + 1e-6 >= a.area().max(b.area()));
    }

    #[test]
    fn centered_rect_contains_its_center_and_nothing_far(c in point(), w in 0.1..1000.0f64, h in 0.1..1000.0f64) {
        let r = Rect::centered_at(c, RectSize::new(w, h));
        prop_assert!(r.contains_open(&c));
        prop_assert_eq!(r.center(), c);
        prop_assert!((r.width() - w).abs() < 1e-9);
        let far = c.translated(w, h);
        prop_assert!(!r.contains_open(&far));
        // Open containment implies closed containment.
        prop_assert!(r.contains_closed(&c));
    }

    #[test]
    fn circle_mbr_contains_the_circle(c in point(), d in 0.1..1000.0f64, q in point()) {
        let circle = Circle::from_diameter(c, d);
        let mbr = circle.mbr();
        if circle.contains_closed(&q) {
            prop_assert!(mbr.contains_closed(&q));
        }
        // The MBR is a d x d square.
        prop_assert!((mbr.width() - d).abs() < 1e-9);
        prop_assert!((mbr.height() - d).abs() < 1e-9);
        prop_assert_eq!(mbr.center(), c);
    }

    #[test]
    fn boundary_intersections_lie_on_both_circles(a in point(), b in point(), d in 0.5..500.0f64) {
        let ca = Circle::from_diameter(a, d);
        let cb = Circle::from_diameter(b, d);
        if let Some(points) = ca.boundary_intersections(&cb) {
            for p in points {
                prop_assert!((ca.center.distance(&p) - ca.radius).abs() < 1e-6 * (1.0 + ca.radius));
                prop_assert!((cb.center.distance(&p) - cb.radius).abs() < 1e-6 * (1.0 + cb.radius));
            }
        }
    }

    #[test]
    fn transformation_duality(o in point(), q in point(), w in 0.5..100.0f64, h in 0.5..100.0f64) {
        // q is covered by the rectangle centered at the object iff the object is
        // covered by the rectangle centered at q — the symmetry behind the
        // rectangle-intersection reduction of Section 4.
        let size = RectSize::new(w, h);
        let obj = WeightedPoint::new(o, 1.0);
        let rect_at_object = obj.to_rect(size);
        let rect_at_query = Rect::centered_at(q, size);
        prop_assert_eq!(rect_at_object.contains_open(&q), rect_at_query.contains_open(&o));
    }
}
