//! Axis-parallel rectangles.

use crate::{Coord, Interval, Point};

/// The extent `d1 × d2` of the MaxRS query rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectSize {
    /// Width (`d1` in the paper).
    pub width: Coord,
    /// Height (`d2` in the paper).
    pub height: Coord,
}

impl RectSize {
    /// Creates a rectangle size; both extents must be strictly positive.
    pub fn new(width: Coord, height: Coord) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "rectangle extents must be positive, got {width} x {height}"
        );
        RectSize { width, height }
    }

    /// A square of the given side length.
    pub fn square(side: Coord) -> Self {
        RectSize::new(side, side)
    }

    /// Area of the rectangle.
    pub fn area(&self) -> Coord {
        self.width * self.height
    }
}

/// An axis-parallel rectangle `[x_lo, x_hi] × [y_lo, y_hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower x bound.
    pub x_lo: Coord,
    /// Upper x bound.
    pub x_hi: Coord,
    /// Lower y bound.
    pub y_lo: Coord,
    /// Upper y bound.
    pub y_hi: Coord,
}

impl Rect {
    /// Creates a rectangle from its bounds; panics in debug builds if the
    /// bounds are inverted.
    pub fn new(x_lo: Coord, x_hi: Coord, y_lo: Coord, y_hi: Coord) -> Self {
        debug_assert!(x_lo <= x_hi, "x_lo {x_lo} > x_hi {x_hi}");
        debug_assert!(y_lo <= y_hi, "y_lo {y_lo} > y_hi {y_hi}");
        Rect {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        }
    }

    /// The rectangle of size `size` centered at `center` — `r(p)` in the paper.
    pub fn centered_at(center: Point, size: RectSize) -> Self {
        Rect::new(
            center.x - size.width / 2.0,
            center.x + size.width / 2.0,
            center.y - size.height / 2.0,
            center.y + size.height / 2.0,
        )
    }

    /// The rectangle spanning the two intervals.
    pub fn from_intervals(x: Interval, y: Interval) -> Self {
        Rect::new(x.lo, x.hi, y.lo, y.hi)
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Point {
        Point::new((self.x_lo + self.x_hi) / 2.0, (self.y_lo + self.y_hi) / 2.0)
    }

    /// Width of the rectangle.
    pub fn width(&self) -> Coord {
        self.x_hi - self.x_lo
    }

    /// Height of the rectangle.
    pub fn height(&self) -> Coord {
        self.y_hi - self.y_lo
    }

    /// Area of the rectangle.
    pub fn area(&self) -> Coord {
        self.width() * self.height()
    }

    /// The x-extent as an interval.
    pub fn x_interval(&self) -> Interval {
        Interval::new(self.x_lo, self.x_hi)
    }

    /// The y-extent as an interval.
    pub fn y_interval(&self) -> Interval {
        Interval::new(self.y_lo, self.y_hi)
    }

    /// `true` when the point lies strictly inside the rectangle (the paper's
    /// convention: boundary objects are excluded).
    pub fn contains_open(&self, p: &Point) -> bool {
        self.x_lo < p.x && p.x < self.x_hi && self.y_lo < p.y && p.y < self.y_hi
    }

    /// `true` when the point lies in the closed rectangle.
    pub fn contains_closed(&self, p: &Point) -> bool {
        self.x_lo <= p.x && p.x <= self.x_hi && self.y_lo <= p.y && p.y <= self.y_hi
    }

    /// `true` when the two closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
            && self.y_lo <= other.y_hi
            && other.y_lo <= self.y_hi
    }

    /// `true` when the two rectangles overlap on a region of positive area.
    pub fn overlaps_open(&self, other: &Rect) -> bool {
        self.x_lo < other.x_hi
            && other.x_lo < self.x_hi
            && self.y_lo < other.y_hi
            && other.y_lo < self.y_hi
    }

    /// Intersection of two rectangles, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x_lo = self.x_lo.max(other.x_lo);
        let x_hi = self.x_hi.min(other.x_hi);
        let y_lo = self.y_lo.max(other.y_lo);
        let y_hi = self.y_hi.min(other.y_hi);
        if x_lo <= x_hi && y_lo <= y_hi {
            Some(Rect::new(x_lo, x_hi, y_lo, y_hi))
        } else {
            None
        }
    }

    /// The smallest rectangle containing both inputs.
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x_lo.min(other.x_lo),
            self.x_hi.max(other.x_hi),
            self.y_lo.min(other.y_lo),
            self.y_hi.max(other.y_hi),
        )
    }

    /// `true` when `other` is fully contained in `self` (closed containment).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_lo
            && other.x_hi <= self.x_hi
            && self.y_lo <= other.y_lo
            && other.y_hi <= self.y_hi
    }

    /// Restricts the rectangle's x-extent to the given interval, returning
    /// `None` when nothing remains.  Used when cropping rectangles to slabs.
    pub fn clip_x(&self, x: &Interval) -> Option<Rect> {
        let x_lo = self.x_lo.max(x.lo);
        let x_hi = self.x_hi.min(x.hi);
        if x_lo <= x_hi {
            Some(Rect::new(x_lo, x_hi, self.y_lo, self.y_hi))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}] x [{}, {}]",
            self.x_lo, self.x_hi, self.y_lo, self.y_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_rectangle() {
        let r = Rect::centered_at(Point::new(10.0, 20.0), RectSize::new(4.0, 6.0));
        assert_eq!(r, Rect::new(8.0, 12.0, 17.0, 23.0));
        assert_eq!(r.center(), Point::new(10.0, 20.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 24.0);
    }

    #[test]
    fn open_vs_closed_containment() {
        let r = Rect::new(0.0, 2.0, 0.0, 2.0);
        let inside = Point::new(1.0, 1.0);
        let boundary = Point::new(2.0, 1.0);
        let corner = Point::new(0.0, 0.0);
        assert!(r.contains_open(&inside));
        assert!(!r.contains_open(&boundary));
        assert!(!r.contains_open(&corner));
        assert!(r.contains_closed(&boundary));
        assert!(r.contains_closed(&corner));
        assert!(!r.contains_closed(&Point::new(3.0, 1.0)));
    }

    #[test]
    fn intersection_behaviour() {
        let a = Rect::new(0.0, 4.0, 0.0, 4.0);
        let b = Rect::new(2.0, 6.0, 2.0, 6.0);
        let c = Rect::new(4.0, 6.0, 0.0, 4.0);
        let d = Rect::new(10.0, 12.0, 10.0, 12.0);
        assert_eq!(a.intersection(&b), Some(Rect::new(2.0, 4.0, 2.0, 4.0)));
        assert!(a.intersects(&c));
        assert!(!a.overlaps_open(&c));
        assert_eq!(a.intersection(&d), None);
        assert!(a.overlaps_open(&b));
        assert_eq!(a.hull(&d), Rect::new(0.0, 12.0, 0.0, 12.0));
    }

    #[test]
    fn clipping_to_slab() {
        let r = Rect::new(0.0, 10.0, 0.0, 1.0);
        let clipped = r.clip_x(&Interval::new(3.0, 5.0)).unwrap();
        assert_eq!(clipped, Rect::new(3.0, 5.0, 0.0, 1.0));
        assert!(r.clip_x(&Interval::new(11.0, 12.0)).is_none());
        // Clipping to an interval containing the rect is a no-op.
        assert_eq!(r.clip_x(&Interval::new(-5.0, 20.0)), Some(r));
    }

    #[test]
    fn rect_size_validation() {
        let s = RectSize::square(3.0);
        assert_eq!(s.width, 3.0);
        assert_eq!(s.height, 3.0);
        assert_eq!(s.area(), 9.0);
        assert_eq!(RectSize::new(2.0, 5.0).area(), 10.0);
    }

    #[test]
    #[should_panic]
    fn rect_size_rejects_zero() {
        let _ = RectSize::new(0.0, 1.0);
    }

    #[test]
    fn contains_rect_and_intervals() {
        let outer = Rect::new(0.0, 10.0, 0.0, 10.0);
        let inner = Rect::new(2.0, 3.0, 4.0, 5.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert_eq!(outer.x_interval(), Interval::new(0.0, 10.0));
        assert_eq!(inner.y_interval(), Interval::new(4.0, 5.0));
        assert_eq!(
            Rect::from_intervals(Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)),
            Rect::new(0.0, 1.0, 2.0, 3.0)
        );
    }
}
