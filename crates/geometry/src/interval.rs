//! One-dimensional intervals over the x-axis.
//!
//! Slab files, max-intervals and slab boundaries are all expressed as
//! [`Interval`]s.  Interval endpoints may be `-∞` / `+∞` (the outermost slabs
//! of the distribution sweep extend to infinity), so the type deliberately
//! works with raw `f64` endpoints rather than a bounded range type.

use crate::Coord;

/// A (possibly unbounded) interval `[lo, hi]` on the x-axis with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint (may be `-∞`).
    pub lo: Coord,
    /// Upper endpoint (may be `+∞`).
    pub hi: Coord,
}

impl Interval {
    /// Creates an interval; panics (in debug builds) if `lo > hi` or either
    /// bound is NaN.
    pub fn new(lo: Coord, hi: Coord) -> Self {
        debug_assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        debug_assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// The whole x-axis `(-∞, +∞)`.
    pub const UNBOUNDED: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// An empty sentinel interval (used before any tuple has been seen).
    pub fn empty_at(x: Coord) -> Self {
        Interval { lo: x, hi: x }
    }

    /// Length of the interval (`+∞` for unbounded intervals).
    pub fn length(&self) -> Coord {
        self.hi - self.lo
    }

    /// `true` if the interval has zero length.
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` when `x` lies in the closed interval.
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `true` when `x` lies strictly inside the interval.
    pub fn contains_open(&self, x: Coord) -> bool {
        self.lo < x && x < self.hi
    }

    /// `true` when the two (closed) intervals share at least one point.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// `true` when the two intervals overlap on a set of positive length.
    pub fn overlaps_open(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection of two intervals, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// `true` when `other` is fully contained in `self` (closed containment).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` when the intervals touch end-to-start (`self.hi == other.lo`)
    /// or start-to-end (`other.hi == self.lo`), i.e. they can be merged into a
    /// single contiguous interval without a gap.
    pub fn touches(&self, other: &Interval) -> bool {
        self.hi == other.lo || other.hi == self.lo || self.intersects(other)
    }

    /// The smallest interval containing both inputs.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Merges two touching or overlapping intervals; `None` if there is a gap.
    pub fn merge(&self, other: &Interval) -> Option<Interval> {
        if self.touches(other) {
            Some(self.hull(other))
        } else {
            None
        }
    }

    /// A representative interior point: the midpoint for bounded intervals and
    /// a point nudged inside for half-bounded ones.
    ///
    /// The MaxRS result is "any point of the max-region"; this picks a
    /// deterministic one even when a slab extends to infinity.
    pub fn representative(&self) -> Coord {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => (self.lo + self.hi) / 2.0,
            (true, false) => self.lo + 1.0,
            (false, true) => self.hi - 1.0,
            (false, false) => 0.0,
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment() {
        let i = Interval::new(1.0, 3.0);
        assert!(i.contains(1.0));
        assert!(i.contains(3.0));
        assert!(!i.contains_open(1.0));
        assert!(i.contains_open(2.0));
        assert!(!i.contains(3.5));
        assert_eq!(i.length(), 2.0);
        assert!(!i.is_degenerate());
        assert!(Interval::empty_at(2.0).is_degenerate());
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let c = Interval::new(2.0, 4.0);
        let d = Interval::new(5.0, 6.0);
        assert_eq!(a.intersection(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersection(&c), Some(Interval::new(2.0, 2.0)));
        assert_eq!(a.intersection(&d), None);
        assert!(a.intersects(&c));
        assert!(!a.overlaps_open(&c));
        assert!(a.overlaps_open(&b));
    }

    #[test]
    fn merge_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        let d = Interval::new(5.0, 6.0);
        assert_eq!(a.merge(&b), Some(Interval::new(0.0, 4.0)));
        assert_eq!(a.merge(&d), None);
        assert_eq!(a.hull(&d), Interval::new(0.0, 6.0));
        assert!(a.touches(&b));
        assert!(b.touches(&a));
        assert!(!a.touches(&d));
    }

    #[test]
    fn unbounded_intervals() {
        let all = Interval::UNBOUNDED;
        assert!(all.contains(1e300));
        assert!(all.contains(-1e300));
        assert_eq!(all.representative(), 0.0);
        let left = Interval::new(f64::NEG_INFINITY, 5.0);
        assert_eq!(left.representative(), 4.0);
        let right = Interval::new(5.0, f64::INFINITY);
        assert_eq!(right.representative(), 6.0);
        let bounded = Interval::new(2.0, 4.0);
        assert_eq!(bounded.representative(), 3.0);
        assert!(all.contains_interval(&bounded));
        assert!(!bounded.contains_interval(&all));
    }
}
