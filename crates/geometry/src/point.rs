//! Points in the Euclidean plane.

use crate::Coord;

/// A location in the 2-dimensional data space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// The x-coordinate.
    pub x: Coord,
    /// The y-coordinate.
    pub y: Coord,
}

impl Point {
    /// Creates a new point.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> Coord {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point (avoids the square root).
    pub fn distance_sq(&self, other: &Point) -> Coord {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// L1 (Manhattan) distance to another point.
    pub fn l1_distance(&self, other: &Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to another point.
    pub fn linf_distance(&self, other: &Point) -> Coord {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Returns this point translated by `(dx, dy)`.
    pub fn translated(&self, dx: Coord, dy: Coord) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// The midpoint between two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// `true` when both coordinates are finite (not NaN / infinite).
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn other_metrics() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.l1_distance(&b), 7.0);
        assert_eq!(a.linf_distance(&b), 4.0);
    }

    #[test]
    fn translation_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(a.translated(2.0, -1.0), Point::new(3.0, 0.0));
        assert_eq!(a.midpoint(&Point::new(3.0, 5.0)), Point::new(2.0, 3.0));
    }

    #[test]
    fn conversions_and_finiteness() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
        assert!(p.is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
        assert_eq!(format!("{}", p), "(2, 3)");
    }
}
