//! Circles (disks) for the MaxCRS problem.

use crate::{Coord, Point, Rect, RectSize};

/// A circle given by its center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (half of the MaxCRS diameter `d`).
    pub radius: Coord,
}

impl Circle {
    /// Creates a circle; the radius must be strictly positive.
    pub fn new(center: Point, radius: Coord) -> Self {
        assert!(radius > 0.0, "circle radius must be positive, got {radius}");
        Circle { center, radius }
    }

    /// Creates the circle `c(p)` of the given *diameter* centered at `p`,
    /// matching the MaxCRS problem statement.
    pub fn from_diameter(center: Point, diameter: Coord) -> Self {
        Circle::new(center, diameter / 2.0)
    }

    /// The diameter of the circle.
    pub fn diameter(&self) -> Coord {
        self.radius * 2.0
    }

    /// Area of the disk.
    pub fn area(&self) -> Coord {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// `true` when the point lies strictly inside the circle (boundary
    /// excluded, as in the paper).
    pub fn contains_open(&self, p: &Point) -> bool {
        self.center.distance_sq(p) < self.radius * self.radius
    }

    /// `true` when the point lies in the closed disk.
    pub fn contains_closed(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Minimum bounding rectangle of the circle — the `d × d` square used by
    /// the ApproxMaxCRS reduction.
    pub fn mbr(&self) -> Rect {
        Rect::centered_at(self.center, RectSize::square(self.diameter()))
    }

    /// `true` when the interiors of the two disks intersect.
    pub fn intersects_open(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(&other.center) < r * r
    }

    /// `true` when the closed disks intersect (they touch or overlap).
    pub fn intersects_closed(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(&other.center) <= r * r
    }

    /// Intersection points of the two circle *boundaries*.
    ///
    /// Returns `None` when the boundaries do not intersect or the circles are
    /// identical; returns the one tangency point twice when they touch.
    /// These points are the candidate locations of the exact MaxCRS algorithm.
    pub fn boundary_intersections(&self, other: &Circle) -> Option<[Point; 2]> {
        let d = self.center.distance(&other.center);
        if d == 0.0 {
            return None;
        }
        if d > self.radius + other.radius || d < (self.radius - other.radius).abs() {
            return None;
        }
        // Distance from self.center to the radical line along the center line.
        let a = (self.radius * self.radius - other.radius * other.radius + d * d) / (2.0 * d);
        let h_sq = self.radius * self.radius - a * a;
        let h = h_sq.max(0.0).sqrt();
        let ex = (other.center.x - self.center.x) / d;
        let ey = (other.center.y - self.center.y) / d;
        let mx = self.center.x + a * ex;
        let my = self.center.y + a * ey;
        Some([
            Point::new(mx + h * ey, my - h * ex),
            Point::new(mx - h * ey, my + h * ex),
        ])
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circle(center={}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn containment_semantics() {
        let c = Circle::from_diameter(Point::new(0.0, 0.0), 2.0);
        assert_eq!(c.radius, 1.0);
        assert!(c.contains_open(&Point::new(0.5, 0.5)));
        assert!(!c.contains_open(&Point::new(1.0, 0.0)));
        assert!(c.contains_closed(&Point::new(1.0, 0.0)));
        assert!(!c.contains_closed(&Point::new(1.1, 0.0)));
    }

    #[test]
    fn mbr_is_square_of_diameter() {
        let c = Circle::from_diameter(Point::new(5.0, 5.0), 4.0);
        let r = c.mbr();
        assert_eq!(r, Rect::new(3.0, 7.0, 3.0, 7.0));
        assert_eq!(r.width(), c.diameter());
        assert_eq!(r.height(), c.diameter());
    }

    #[test]
    fn disk_intersection_predicates() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.5, 0.0), 1.0);
        let c = Circle::new(Point::new(2.0, 0.0), 1.0);
        let d = Circle::new(Point::new(5.0, 0.0), 1.0);
        assert!(a.intersects_open(&b));
        assert!(!a.intersects_open(&c)); // tangent: interiors do not meet
        assert!(a.intersects_closed(&c));
        assert!(!a.intersects_closed(&d));
    }

    #[test]
    fn boundary_intersections_basic() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        let pts = a.boundary_intersections(&b).unwrap();
        for p in pts {
            assert!(approx_eq(a.center.distance(&p), 1.0, 1e-9));
            assert!(approx_eq(b.center.distance(&p), 1.0, 1e-9));
            assert!(approx_eq(p.x, 0.5, 1e-9));
        }
        assert!(approx_eq((pts[0].y - pts[1].y).abs(), 3.0f64.sqrt(), 1e-9));
    }

    #[test]
    fn boundary_intersections_degenerate() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let far = Circle::new(Point::new(10.0, 0.0), 1.0);
        let same = Circle::new(Point::new(0.0, 0.0), 1.0);
        let inside = Circle::new(Point::new(0.1, 0.0), 0.2);
        assert!(a.boundary_intersections(&far).is_none());
        assert!(a.boundary_intersections(&same).is_none());
        assert!(a.boundary_intersections(&inside).is_none());
        // Tangent circles meet in (numerically) one point reported twice.
        let tangent = Circle::new(Point::new(2.0, 0.0), 1.0);
        let pts = a.boundary_intersections(&tangent).unwrap();
        assert!(approx_eq(pts[0].x, 1.0, 1e-9));
        assert!(approx_eq(pts[1].x, 1.0, 1e-9));
    }

    #[test]
    fn area_and_display() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!(approx_eq(c.area(), 4.0 * std::f64::consts::PI, 1e-12));
        assert_eq!(c.diameter(), 4.0);
        assert!(format!("{}", c).contains("r=2"));
    }
}
