//! Weighted spatial objects — the elements of the dataset `O`.

use crate::{Circle, Coord, Point, Rect, RectSize, Weight};

/// A spatial object: a point location with a non-negative weight `w(o)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Location of the object.
    pub point: Point,
    /// Non-negative weight of the object.
    pub weight: Weight,
}

impl WeightedPoint {
    /// Creates a weighted object; the weight must be non-negative and finite.
    pub fn new(point: Point, weight: Weight) -> Self {
        debug_assert!(
            weight >= 0.0 && weight.is_finite(),
            "object weights must be finite and non-negative, got {weight}"
        );
        WeightedPoint { point, weight }
    }

    /// Convenience constructor from raw coordinates.
    pub fn at(x: Coord, y: Coord, weight: Weight) -> Self {
        WeightedPoint::new(Point::new(x, y), weight)
    }

    /// An object of weight 1 (the unweighted / COUNT setting of the paper's
    /// introduction example).
    pub fn unit(x: Coord, y: Coord) -> Self {
        WeightedPoint::at(x, y, 1.0)
    }

    /// The x-coordinate of the object.
    pub fn x(&self) -> Coord {
        self.point.x
    }

    /// The y-coordinate of the object.
    pub fn y(&self) -> Coord {
        self.point.y
    }

    /// The transformed rectangle `r_o` of the rectangle-intersection
    /// reduction: a rectangle of the query size centered at the object.
    pub fn to_rect(&self, size: RectSize) -> Rect {
        Rect::centered_at(self.point, size)
    }

    /// The transformed circle of the MaxCRS reduction: a circle of the query
    /// diameter centered at the object.
    pub fn to_circle(&self, diameter: Coord) -> Circle {
        Circle::from_diameter(self.point, diameter)
    }
}

/// Total weight of the objects of `objects` that lie strictly inside the
/// rectangle of size `size` centered at `center` — the MaxRS objective
/// evaluated by brute force.  Used by tests and by result validation.
pub fn range_sum_rect(objects: &[WeightedPoint], center: Point, size: RectSize) -> Weight {
    let r = Rect::centered_at(center, size);
    objects
        .iter()
        .filter(|o| r.contains_open(&o.point))
        .map(|o| o.weight)
        .sum()
}

/// Total weight of the objects strictly inside the circle of diameter
/// `diameter` centered at `center` — the MaxCRS objective evaluated by brute
/// force.
pub fn range_sum_circle(objects: &[WeightedPoint], center: Point, diameter: Coord) -> Weight {
    let c = Circle::from_diameter(center, diameter);
    objects
        .iter()
        .filter(|o| c.contains_open(&o.point))
        .map(|o| o.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let o = WeightedPoint::at(1.0, 2.0, 3.0);
        assert_eq!(o.x(), 1.0);
        assert_eq!(o.y(), 2.0);
        assert_eq!(o.weight, 3.0);
        assert_eq!(WeightedPoint::unit(1.0, 2.0).weight, 1.0);
    }

    #[test]
    fn transformation_to_rect_and_circle() {
        let o = WeightedPoint::at(10.0, 10.0, 2.0);
        let r = o.to_rect(RectSize::new(4.0, 2.0));
        assert_eq!(r, Rect::new(8.0, 12.0, 9.0, 11.0));
        let c = o.to_circle(6.0);
        assert_eq!(c.radius, 3.0);
        assert_eq!(c.center, o.point);
    }

    #[test]
    fn brute_force_range_sums() {
        let objects = vec![
            WeightedPoint::at(0.0, 0.0, 1.0),
            WeightedPoint::at(1.0, 1.0, 2.0),
            WeightedPoint::at(5.0, 5.0, 4.0),
            WeightedPoint::at(2.0, 0.0, 8.0), // exactly on the rect boundary below
        ];
        let size = RectSize::new(4.0, 4.0);
        // Rect centered at (0,0): covers (0,0) and (1,1); (2,0) is on the boundary.
        assert_eq!(range_sum_rect(&objects, Point::new(0.0, 0.0), size), 3.0);
        // Circle of diameter 4 centered at (0,0): covers (0,0) and (1,1),
        // excludes (2,0) which is exactly on the boundary.
        assert_eq!(range_sum_circle(&objects, Point::new(0.0, 0.0), 4.0), 3.0);
        // Large circle covers everything.
        assert_eq!(range_sum_circle(&objects, Point::new(2.0, 2.0), 20.0), 15.0);
    }
}
