//! Geometric primitives shared by every crate of the MaxRS workspace.
//!
//! The MaxRS problem (maximizing range sum) and its circular variant MaxCRS
//! operate on weighted points in the Euclidean plane and on axis-parallel
//! rectangles / circles of a fixed size.  This crate provides:
//!
//! * [`Point`] — a location in the plane,
//! * [`WeightedPoint`] — a spatial object with a non-negative weight,
//! * [`Interval`] — a 1-D x-range, possibly unbounded (used by slab files and
//!   max-intervals),
//! * [`Rect`] — an axis-parallel rectangle,
//! * [`Circle`] — a circle given by center and radius,
//! * [`RectSize`] — the query rectangle extent `d1 × d2` of a MaxRS instance.
//!
//! # Boundary semantics
//!
//! Following the paper ("objects on the boundary of the rectangle or the
//! circle are excluded"), all *containment* tests used by the algorithms are
//! **open**: [`Rect::contains_open`] and [`Circle::contains_open`] return
//! `false` for points exactly on the boundary.  Closed variants are provided
//! for index structures and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod interval;
mod point;
mod rect;
mod weighted;

pub use circle::Circle;
pub use interval::Interval;
pub use point::Point;
pub use rect::{Rect, RectSize};
pub use weighted::{range_sum_circle, range_sum_rect, WeightedPoint};

/// Numeric type used for all coordinates and weights.
///
/// The paper's data space is `[0, 10^6]^2` with weights ≥ 0; `f64` has ample
/// precision for every dataset size used in the evaluation.
pub type Coord = f64;

/// Total weight type (sums of many `Coord` weights).
pub type Weight = f64;

/// Compares two floating point values with a relative/absolute tolerance.
///
/// Used by tests and by result validation, never inside the sweep algorithms
/// themselves (those rely on exact comparisons of the input coordinates).
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    diff <= eps || diff <= eps * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
    }

    #[test]
    fn approx_eq_zero_and_sign() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(0.0, 1e-15, 1e-12));
        assert!(!approx_eq(-1.0, 1.0, 1e-6));
    }
}
