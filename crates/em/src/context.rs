//! The EM context: configuration + disk + buffer pool.

use parking_lot::Mutex;

use crate::{
    BlockDevice, BufferPool, EmConfig, FileId, FsDisk, IoSnapshot, Record, Result, SimDisk,
    StorageBackend, TupleFile, TupleReader, TupleWriter,
};

/// Owns a simulated disk and the bounded buffer pool through which all block
/// accesses are routed.
///
/// One `EmContext` corresponds to one experimental run: algorithms receive a
/// `&EmContext`, allocate temporary files on it, and the harness reads the I/O
/// counters afterwards.
///
/// # Concurrency
///
/// The context is `Send + Sync` and may be **shared across threads** (by
/// reference from scoped threads, or behind an `Arc`): the disk directory and
/// the buffer pool are guarded by internal mutexes, and the I/O counters are
/// sharded per thread and merged on [`stats`](EmContext::stats).  This is what
/// the parallel slab stage of ExactMaxRS relies on — each worker creates,
/// reads and deletes its own temporary files concurrently.  Block-level
/// accesses are serialized by the pool lock, so the *counted* I/O stays exact;
/// wall-clock parallelism comes from the CPU work the algorithms do between
/// block accesses (sorting, plane sweeps).  Writers and readers themselves are
/// not `Sync`: each thread uses its own [`TupleWriter`]/[`TupleReader`].
#[derive(Debug)]
pub struct EmContext {
    config: EmConfig,
    disk: Box<dyn BlockDevice>,
    pool: Mutex<BufferPool>,
}

impl EmContext {
    /// Creates a context with the given configuration, constructing the block
    /// device the configuration's [`StorageBackend`] selects.
    ///
    /// # Panics
    ///
    /// Panics if the filesystem backend cannot create its temp directory —
    /// an environmental failure no caller can meaningfully handle; use
    /// [`with_device`](EmContext::with_device) with a pre-built [`FsDisk`]
    /// for checked construction or a custom directory.
    pub fn new(config: EmConfig) -> Self {
        let disk: Box<dyn BlockDevice> = match config.backend {
            StorageBackend::Sim => Box::new(SimDisk::new(config.block_size)),
            StorageBackend::Fs => Box::new(
                FsDisk::new(config.block_size).expect("FsDisk: cannot create temp directory"),
            ),
        };
        Self::with_device(config, disk)
    }

    /// Creates a context running against a caller-supplied block device
    /// (e.g. an [`FsDisk`] rooted at a chosen directory).
    ///
    /// # Panics
    ///
    /// Panics if the device's block size disagrees with the configuration.
    pub fn with_device(config: EmConfig, disk: Box<dyn BlockDevice>) -> Self {
        assert_eq!(
            disk.block_size(),
            config.block_size,
            "device block size must match the EM configuration"
        );
        let pool = BufferPool::new(config.buffer_blocks().max(2), config.block_size);
        EmContext {
            config,
            disk,
            pool: Mutex::new(pool),
        }
    }

    /// Creates a context with the paper's synthetic-dataset defaults.
    pub fn with_defaults() -> Self {
        EmContext::new(EmConfig::default())
    }

    /// The short name of the block-device backend ("sim", "fs").
    pub fn backend_name(&self) -> &'static str {
        self.disk.backend_name()
    }

    /// The configuration of this context.
    pub fn config(&self) -> EmConfig {
        self.config
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoSnapshot {
        self.disk.stats()
    }

    /// Resets the I/O counters (typically done after loading a dataset so that
    /// only the algorithm under test is measured).
    pub fn reset_stats(&self) {
        self.disk.reset_stats();
    }

    /// (cached blocks, pool capacity) — diagnostic information.
    pub fn pool_usage(&self) -> (usize, usize) {
        let pool = self.pool.lock();
        (pool.len(), pool.capacity())
    }

    /// (pool hits, pool misses) — diagnostic information.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        self.pool.lock().hit_stats()
    }

    /// Total blocks currently allocated on the simulated disk.
    pub fn disk_blocks(&self) -> u64 {
        self.disk.total_blocks()
    }

    /// Number of files currently allocated on the simulated disk (diagnostic;
    /// used by tests asserting temporary-file hygiene).
    pub fn num_files(&self) -> usize {
        self.disk.num_files()
    }

    // ----- typed record files ------------------------------------------------

    /// Creates a writer for a new file of `T` records.
    pub fn create_writer<T: Record>(&self) -> Result<TupleWriter<'_, T>> {
        TupleWriter::new(self)
    }

    /// Opens a sequential reader over an existing file.
    pub fn open_reader<T: Record>(&self, file: &TupleFile<T>) -> TupleReader<'_, T> {
        TupleReader::new(self, file)
    }

    /// Writes all records to a fresh file.
    pub fn write_all<T: Record>(&self, records: &[T]) -> Result<TupleFile<T>> {
        let mut w = self.create_writer::<T>()?;
        for r in records {
            w.push(r)?;
        }
        w.finish()
    }

    /// Reads an entire file into memory.  Counts the I/Os of a sequential
    /// scan; intended for small files, result inspection and tests.
    pub fn read_all<T: Record>(&self, file: &TupleFile<T>) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(file.len() as usize);
        let mut reader = self.open_reader(file);
        while let Some(rec) = reader.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    /// Streams `input` through `f`, writing every produced record to a fresh
    /// file in input order — the transform-aware scan of the MaxRS pipeline
    /// (object→rectangle at dataset-scan time, weight negation for MinRS,
    /// suppression filters for top-k rounds).
    ///
    /// One sequential pass: `O(N/B)` block reads plus `O(N'/B)` writes, with
    /// only one input and one output block buffered at a time.  Records for
    /// which `f` returns `None` are dropped.
    pub fn filter_map_file<A: Record, B: Record>(
        &self,
        input: &TupleFile<A>,
        mut f: impl FnMut(A) -> Option<B>,
    ) -> Result<TupleFile<B>> {
        let mut reader = self.open_reader(input);
        let mut writer = self.create_writer::<B>()?;
        while let Some(rec) = reader.next_record()? {
            if let Some(out) = f(rec) {
                writer.push(&out)?;
            }
        }
        writer.finish()
    }

    /// [`filter_map_file`](EmContext::filter_map_file) without the filtering:
    /// a 1:1 streaming record transform.
    pub fn map_file<A: Record, B: Record>(
        &self,
        input: &TupleFile<A>,
        mut f: impl FnMut(A) -> B,
    ) -> Result<TupleFile<B>> {
        self.filter_map_file(input, |rec| Some(f(rec)))
    }

    /// Deletes a record file, discarding any of its blocks still in the pool.
    pub fn delete_file<T: Record>(&self, file: TupleFile<T>) -> Result<()> {
        self.pool.lock().drop_file(file.id);
        self.disk.delete_file(file.id)
    }

    /// Flushes every dirty pool block to disk (counts the corresponding write
    /// I/Os).  Mostly useful at the end of an experiment when the cost of
    /// persisting the final result should be included.
    pub fn flush_all(&self) -> Result<()> {
        self.pool.lock().flush_all(self.disk.as_ref())
    }

    /// Flushes every dirty pool block of one file to disk (counts the write
    /// I/Os), leaving other files' cached state untouched — used to
    /// materialize a retained file on a shared context without perturbing
    /// unrelated workloads' measurements.
    pub fn flush_file<T: Record>(&self, file: &TupleFile<T>) -> Result<()> {
        self.pool.lock().flush_file(self.disk.as_ref(), file.id)
    }

    // ----- raw block files (for index structures) -----------------------------

    /// Allocates a raw block file (no record typing); used by structures such
    /// as the aSB-tree that lay out their own nodes.
    pub fn create_raw_file(&self) -> Result<FileId> {
        self.disk.create_file()
    }

    /// Deletes a raw block file.
    pub fn delete_raw_file(&self, file: FileId) -> Result<()> {
        self.pool.lock().drop_file(file);
        self.disk.delete_file(file)
    }

    /// Number of blocks of a raw file currently on disk.
    pub fn raw_file_blocks(&self, file: FileId) -> Result<u64> {
        self.disk.num_blocks(file)
    }

    /// Reads block `block` of `file` through the pool.
    pub fn with_block_read<R>(
        &self,
        file: FileId,
        block: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        self.pool
            .lock()
            .with_read(self.disk.as_ref(), file, block, f)
    }

    /// Writes block `block` of `file` through the pool.  See
    /// [`BufferPool::with_write`] for the meaning of `create`.
    pub fn with_block_write<R>(
        &self,
        file: FileId,
        block: u64,
        create: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        self.pool
            .lock()
            .with_write(self.disk.as_ref(), file, block, create, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_context() {
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let data: Vec<u64> = (0..100).collect();
        let file = ctx.write_all(&data).unwrap();
        assert_eq!(file.len(), 100);
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back, data);
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn stats_reflect_block_math() {
        // 64-byte blocks, 8 records per block, pool of 4 frames.
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let data: Vec<u64> = (0..64).collect(); // 8 blocks, pool holds 4
        let file = ctx.write_all(&data).unwrap();
        // Writing 8 blocks through a 4-frame pool must evict at least 4.
        assert!(ctx.stats().writes >= 4);
        ctx.reset_stats();
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back.len(), 64);
        // Reading must fetch at least the blocks that are no longer cached.
        assert!(ctx.stats().reads >= 4);
        assert!(ctx.stats().reads <= 8);
    }

    #[test]
    fn small_files_can_stay_entirely_in_the_pool() {
        let ctx = EmContext::new(EmConfig::new(64, 64 * 16).unwrap());
        let data: Vec<u64> = (0..32).collect(); // 4 blocks, pool holds 16
        let file = ctx.write_all(&data).unwrap();
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back, data);
        assert_eq!(
            ctx.stats().total(),
            0,
            "a file smaller than the buffer never touches the disk"
        );
    }

    #[test]
    fn raw_block_files() {
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let f = ctx.create_raw_file().unwrap();
        ctx.with_block_write(f, 0, true, |b| b[0] = 9).unwrap();
        let v = ctx.with_block_read(f, 0, |b| b[0]).unwrap();
        assert_eq!(v, 9);
        ctx.flush_all().unwrap();
        assert_eq!(ctx.raw_file_blocks(f).unwrap(), 1);
        ctx.delete_raw_file(f).unwrap();
        assert!(ctx.delete_raw_file(f).is_err());
    }

    #[test]
    fn context_is_sync_and_shareable_across_scoped_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<EmContext>();

        // Several workers create, fill, read back and delete private files
        // through one shared context; contents stay isolated and the final
        // disk is empty.
        let ctx = EmContext::new(EmConfig::new(64, 1024).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ctx = &ctx;
                scope.spawn(move || {
                    for round in 0..5u64 {
                        let data: Vec<u64> = (0..200).map(|i| i * 1000 + t).collect();
                        let file = ctx.write_all(&data).unwrap();
                        let back = ctx.read_all(&file).unwrap();
                        assert_eq!(back, data, "thread {t} round {round}");
                        ctx.delete_file(file).unwrap();
                    }
                });
            }
        });
        assert_eq!(ctx.disk_blocks(), 0);
        assert!(ctx.stats().total() > 0);
    }

    #[test]
    fn pool_diagnostics() {
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let (len, cap) = ctx.pool_usage();
        assert_eq!(len, 0);
        assert_eq!(cap, 4);
        let _ = ctx.write_all(&(0..8u64).collect::<Vec<_>>()).unwrap();
        let (len, _) = ctx.pool_usage();
        assert!(len >= 1);
        let (_hits, misses) = ctx.pool_hit_stats();
        assert!(misses >= 1);
        assert!(ctx.disk_blocks() <= 1);
    }
}
