//! RAM-backed simulated block device with I/O accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{BlockDevice, EmError, IoSnapshot, IoStats, Result};

/// Identifier of a file on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A simulated disk.
///
/// Files are growable sequences of fixed-size blocks stored in RAM.  Every
/// [`read_block`](SimDisk::read_block) and [`write_block`](SimDisk::write_block)
/// increments the shared [`IoStats`] counters, which is how the experiments
/// measure the paper's I/O-cost metric.  The disk itself performs no caching —
/// that is the [`BufferPool`](crate::BufferPool)'s job — so every call here
/// corresponds to one real block transfer.
#[derive(Debug)]
pub struct SimDisk {
    block_size: usize,
    files: Mutex<HashMap<FileId, Vec<Box<[u8]>>>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
}

impl SimDisk {
    /// Creates an empty disk with the given block size.
    pub fn new(block_size: usize) -> Self {
        SimDisk {
            block_size,
            files: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Shared handle to the I/O counters.
    pub fn stats_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Current I/O counter values.
    pub fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Allocates a new, empty file and returns its id.
    pub fn create_file(&self) -> FileId {
        let id = FileId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.files.lock().insert(id, Vec::new());
        id
    }

    /// Removes a file and frees its blocks.  Deleting an unknown file is an
    /// error so that double-deletes are caught early.
    pub fn delete_file(&self, id: FileId) -> Result<()> {
        match self.files.lock().remove(&id) {
            Some(_) => Ok(()),
            None => Err(EmError::FileNotFound(id)),
        }
    }

    /// `true` if the file exists.
    pub fn file_exists(&self, id: FileId) -> bool {
        self.files.lock().contains_key(&id)
    }

    /// Number of blocks currently stored for the file.
    pub fn num_blocks(&self, id: FileId) -> Result<u64> {
        self.files
            .lock()
            .get(&id)
            .map(|blocks| blocks.len() as u64)
            .ok_or(EmError::FileNotFound(id))
    }

    /// `true` if block `idx` of the file has been written to disk.
    pub fn block_exists(&self, id: FileId, idx: u64) -> bool {
        self.files
            .lock()
            .get(&id)
            .map(|blocks| (idx as usize) < blocks.len())
            .unwrap_or(false)
    }

    /// Reads block `idx` of the file into `dst` (which must be exactly one
    /// block long).  Counts one read I/O.
    pub fn read_block(&self, id: FileId, idx: u64, dst: &mut [u8]) -> Result<()> {
        assert_eq!(dst.len(), self.block_size, "destination must be one block");
        let files = self.files.lock();
        let blocks = files.get(&id).ok_or(EmError::FileNotFound(id))?;
        let block = blocks.get(idx as usize).ok_or(EmError::BlockOutOfRange {
            file: id,
            block: idx,
            len: blocks.len() as u64,
        })?;
        dst.copy_from_slice(block);
        self.stats.record_read();
        Ok(())
    }

    /// Writes `src` (exactly one block) as block `idx` of the file, growing
    /// the file with zero blocks if `idx` is past the current end (sparse
    /// writes happen when the buffer pool evicts blocks out of order).
    /// Counts one write I/O.
    pub fn write_block(&self, id: FileId, idx: u64, src: &[u8]) -> Result<()> {
        assert_eq!(src.len(), self.block_size, "source must be one block");
        let mut files = self.files.lock();
        let blocks = files.get_mut(&id).ok_or(EmError::FileNotFound(id))?;
        let idx = idx as usize;
        while blocks.len() <= idx {
            blocks.push(vec![0u8; self.block_size].into_boxed_slice());
        }
        blocks[idx].copy_from_slice(src);
        self.stats.record_write();
        Ok(())
    }

    /// Total number of blocks currently allocated across all files (used by
    /// tests and by the experiment harness to report space usage).
    pub fn total_blocks(&self) -> u64 {
        self.files
            .lock()
            .values()
            .map(|blocks| blocks.len() as u64)
            .sum()
    }

    /// Number of files currently allocated.
    pub fn num_files(&self) -> usize {
        self.files.lock().len()
    }
}

/// The trait surface simply delegates to the inherent methods, which remain
/// available for code that works with a concrete `SimDisk`.
impl BlockDevice for SimDisk {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn block_size(&self) -> usize {
        SimDisk::block_size(self)
    }

    fn create_file(&self) -> Result<FileId> {
        Ok(SimDisk::create_file(self))
    }

    fn delete_file(&self, id: FileId) -> Result<()> {
        SimDisk::delete_file(self, id)
    }

    fn file_exists(&self, id: FileId) -> bool {
        SimDisk::file_exists(self, id)
    }

    fn num_blocks(&self, id: FileId) -> Result<u64> {
        SimDisk::num_blocks(self, id)
    }

    fn block_exists(&self, id: FileId, idx: u64) -> bool {
        SimDisk::block_exists(self, id, idx)
    }

    fn read_block(&self, id: FileId, idx: u64, dst: &mut [u8]) -> Result<()> {
        SimDisk::read_block(self, id, idx, dst)
    }

    fn write_block(&self, id: FileId, idx: u64, src: &[u8]) -> Result<()> {
        SimDisk::write_block(self, id, idx, src)
    }

    fn total_blocks(&self) -> u64 {
        SimDisk::total_blocks(self)
    }

    fn num_files(&self) -> usize {
        SimDisk::num_files(self)
    }

    fn stats(&self) -> IoSnapshot {
        SimDisk::stats(self)
    }

    fn reset_stats(&self) {
        SimDisk::reset_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_roundtrip() {
        let disk = SimDisk::new(64);
        let f = disk.create_file();
        assert!(disk.file_exists(f));
        assert_eq!(disk.num_blocks(f).unwrap(), 0);

        let data = vec![7u8; 64];
        disk.write_block(f, 0, &data).unwrap();
        disk.write_block(f, 1, &[9u8; 64]).unwrap();
        assert_eq!(disk.num_blocks(f).unwrap(), 2);

        let mut out = vec![0u8; 64];
        disk.read_block(f, 0, &mut out).unwrap();
        assert_eq!(out, data);
        disk.read_block(f, 1, &mut out).unwrap();
        assert_eq!(out[0], 9);

        let snap = disk.stats();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 2);
    }

    #[test]
    fn sparse_writes_extend_with_zeros() {
        let disk = SimDisk::new(16);
        let f = disk.create_file();
        disk.write_block(f, 3, &[1u8; 16]).unwrap();
        assert_eq!(disk.num_blocks(f).unwrap(), 4);
        let mut out = vec![2u8; 16];
        disk.read_block(f, 1, &mut out).unwrap();
        assert_eq!(out, vec![0u8; 16]);
    }

    #[test]
    fn errors() {
        let disk = SimDisk::new(16);
        let f = disk.create_file();
        let mut buf = vec![0u8; 16];
        assert!(matches!(
            disk.read_block(f, 0, &mut buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
        let ghost = FileId(999);
        assert!(matches!(
            disk.read_block(ghost, 0, &mut buf),
            Err(EmError::FileNotFound(_))
        ));
        assert!(disk.delete_file(ghost).is_err());
        disk.delete_file(f).unwrap();
        assert!(!disk.file_exists(f));
        assert!(disk.delete_file(f).is_err());
    }

    #[test]
    fn ids_are_unique_and_counts_accumulate() {
        let disk = SimDisk::new(16);
        let a = disk.create_file();
        let b = disk.create_file();
        assert_ne!(a, b);
        assert_eq!(disk.num_files(), 2);
        disk.write_block(a, 0, &[0u8; 16]).unwrap();
        disk.write_block(b, 0, &[0u8; 16]).unwrap();
        assert_eq!(disk.total_blocks(), 2);
        disk.reset_stats();
        assert_eq!(disk.stats().total(), 0);
    }
}
