//! I/O accounting.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards.  Each thread is pinned to one shard, so
/// concurrent slab workers never contend on the same cache line; snapshots
/// merge all shards into one global view.
const SHARDS: usize = 16;

/// One cache-line-aligned pair of counters, owned (in the common case) by the
/// threads hashed onto it.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Thread-safe counters of block transfers, shared between the simulated disk
/// and the context that owns it.
///
/// Every block read from the disk into the buffer pool and every block written
/// back (on dirty eviction or explicit flush) increments the respective
/// counter.  The paper's performance metric is exactly `reads + writes`
/// ("the number of transferred blocks during the entire process").
///
/// # Concurrency
///
/// Counters are **sharded per thread**: each recording thread increments a
/// private cache-line-aligned shard chosen on first use, and
/// [`snapshot`](IoStats::snapshot) merges the shards.  This keeps the
/// accounting exact under the parallel slab stage of ExactMaxRS without
/// serializing workers on a single hot atomic.
#[derive(Debug, Default)]
pub struct IoStats {
    shards: [Shard; SHARDS],
}

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;

    /// Stack of active per-thread meters (see [`measure_thread_io`]); every
    /// block transfer recorded by the current thread also increments each
    /// active meter.
    static THREAD_METERS: RefCell<Vec<IoSnapshot>> = const { RefCell::new(Vec::new()) };
}

/// Adds one transfer to every meter currently active on this thread.
fn bump_thread_meters(reads: u64, writes: u64) {
    THREAD_METERS.with(|meters| {
        for m in meters.borrow_mut().iter_mut() {
            m.reads += reads;
            m.writes += writes;
        }
    });
}

/// Measures the block transfers recorded **by the current thread** while `f`
/// runs, returning `f`'s result together with the observed [`IoSnapshot`].
///
/// This is the per-task accounting primitive for concurrent workloads: the
/// global [`IoStats`] shards stay exact under parallelism but merge into one
/// total, so a worker that wants to know what *its own* work cost wraps it in
/// `measure_thread_io` (the batched query executor attributes per-group I/O
/// this way while groups run on the `parallel_map` pool).  The meter counts
/// every transfer the current thread triggers — including evictions of other
/// files' dirty blocks it forces out of a shared buffer pool — and nothing
/// done by other threads, so the measurement is only complete when the task
/// runs single-threaded inside `f`.  Scopes nest; each returns its own count.
pub fn measure_thread_io<R>(f: impl FnOnce() -> R) -> (R, IoSnapshot) {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            THREAD_METERS.with(|meters| {
                meters.borrow_mut().pop();
            });
        }
    }
    THREAD_METERS.with(|meters| meters.borrow_mut().push(IoSnapshot::default()));
    let guard = Guard;
    let out = f();
    let io = THREAD_METERS
        .with(|meters| meters.borrow().last().copied())
        .unwrap_or_default();
    drop(guard);
    (out, io)
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    fn my_shard(&self) -> &Shard {
        &self.shards[MY_SHARD.with(|&s| s)]
    }

    /// Records one block read.
    pub fn record_read(&self) {
        self.my_shard().reads.fetch_add(1, Ordering::Relaxed);
        bump_thread_meters(1, 0);
    }

    /// Records one block write.
    pub fn record_write(&self) {
        self.my_shard().writes.fetch_add(1, Ordering::Relaxed);
        bump_thread_meters(0, 1);
    }

    /// Returns the current counter values, merged over all per-thread shards.
    pub fn snapshot(&self) -> IoSnapshot {
        let mut snap = IoSnapshot::default();
        for shard in &self.shards {
            snap.reads += shard.reads.load(Ordering::Relaxed);
            snap.writes += shard.writes.load(Ordering::Relaxed);
        }
        snap
    }

    /// Resets all shards to zero.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.reads.store(0, Ordering::Relaxed);
            shard.writes.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of blocks read from disk.
    pub reads: u64,
    /// Number of blocks written to disk.
    pub writes: u64,
}

impl IoSnapshot {
    /// Total number of transferred blocks — the paper's I/O cost metric.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// The transfers `self` performed beyond `baseline`, per counter
    /// (saturating at zero) — the canonical snapshot subtraction.
    ///
    /// Use this instead of hand-rolling `saturating_sub` on the fields: it
    /// keeps reads and writes paired and composes with [`total`]
    /// (`a.delta(&b).total()` is "how many more blocks did `a` move").
    ///
    /// [`total`]: IoSnapshot::total
    pub fn delta(&self, baseline: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(baseline.reads),
            writes: self.writes.saturating_sub(baseline.writes),
        }
    }

    /// Difference between two snapshots (`self` taken after `earlier`):
    /// alias of [`delta`](IoSnapshot::delta) reading naturally when the
    /// receiver is the later counter reading.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        self.delta(earlier)
    }

    /// How many more blocks `self` moved than `baseline` **in total**
    /// (saturating at zero): `self.total() - baseline.total()`.
    ///
    /// This is *not* `delta(baseline).total()` — that saturates per counter
    /// and can overstate the difference when one counter regresses while the
    /// other grows.  Use `total_delta` for "did it really cost fewer blocks"
    /// comparisons (savings reports, cost-floor assertions); use
    /// [`delta`](IoSnapshot::delta) when both snapshots are readings of the
    /// same monotonically increasing counters.
    pub fn total_delta(&self, baseline: &IoSnapshot) -> u64 {
        self.total().saturating_sub(baseline.total())
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;
    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.reads,
            self.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let stats = IoStats::new();
        stats.record_read();
        stats.record_read();
        stats.record_write();
        let snap = stats.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total(), 3);
        stats.reset();
        assert_eq!(stats.snapshot().total(), 0);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = IoSnapshot {
            reads: 10,
            writes: 4,
        };
        let b = IoSnapshot {
            reads: 3,
            writes: 1,
        };
        assert_eq!(
            a.since(&b),
            IoSnapshot {
                reads: 7,
                writes: 3
            }
        );
        assert_eq!(
            b.since(&a),
            IoSnapshot {
                reads: 0,
                writes: 0
            }
        );
        assert_eq!((a + b).total(), 18);
        assert!(a.to_string().contains("14 I/Os"));
    }

    #[test]
    fn delta_is_the_canonical_subtraction() {
        let after = IoSnapshot {
            reads: 10,
            writes: 4,
        };
        let before = IoSnapshot {
            reads: 3,
            writes: 6,
        };
        // Per-counter saturation: mixed over/undershoot never wraps.
        assert_eq!(
            after.delta(&before),
            IoSnapshot {
                reads: 7,
                writes: 0
            }
        );
        assert_eq!(after.since(&before), after.delta(&before));
        // total_delta compares grand totals; the per-counter saturation of
        // `delta` would claim 7 here, overstating the real difference of 5.
        assert_eq!(after.total_delta(&before), 5);
        assert_eq!(before.total_delta(&after), 0);
    }

    #[test]
    fn thread_meter_counts_only_the_current_thread() {
        use std::sync::Arc;
        let stats = Arc::new(IoStats::new());
        let background = Arc::clone(&stats);
        let (_, io) = measure_thread_io(|| {
            // Another thread hammers the same stats while we record 3 + 1.
            let handle = std::thread::spawn(move || {
                for _ in 0..500 {
                    background.record_read();
                    background.record_write();
                }
            });
            stats.record_read();
            stats.record_read();
            stats.record_read();
            stats.record_write();
            handle.join().unwrap();
        });
        assert_eq!(io.reads, 3);
        assert_eq!(io.writes, 1);
        // The global shards still saw everything.
        assert_eq!(stats.snapshot().reads, 503);
        assert_eq!(stats.snapshot().writes, 501);
    }

    #[test]
    fn thread_meters_nest() {
        let stats = IoStats::new();
        let ((_, inner), outer) = measure_thread_io(|| {
            stats.record_read();
            let inner = measure_thread_io(|| stats.record_write());
            stats.record_read();
            inner
        });
        assert_eq!(
            inner,
            IoSnapshot {
                reads: 0,
                writes: 1
            }
        );
        assert_eq!(
            outer,
            IoSnapshot {
                reads: 2,
                writes: 1
            }
        );
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let stats = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().reads, 4000);
    }

    #[test]
    fn shards_merge_into_one_exact_total() {
        use std::sync::Arc;
        // More threads than shards: wrap-around assignment must still produce
        // an exact global count.
        let stats = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..SHARDS * 2 + 3)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.record_read();
                        s.record_write();
                    }
                })
            })
            .collect();
        let n = handles.len() as u64;
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().reads, 100 * n);
        assert_eq!(stats.snapshot().writes, 100 * n);
    }
}
