//! I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Thread-safe counters of block transfers, shared between the simulated disk
/// and the context that owns it.
///
/// Every block read from the disk into the buffer pool and every block written
/// back (on dirty eviction or explicit flush) increments the respective
/// counter.  The paper's performance metric is exactly `reads + writes`
/// ("the number of transferred blocks during the entire process").
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records one block read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one block write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Number of blocks read from disk.
    pub reads: u64,
    /// Number of blocks written to disk.
    pub writes: u64,
}

impl IoSnapshot {
    /// Total number of transferred blocks — the paper's I/O cost metric.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;
    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.reads,
            self.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let stats = IoStats::new();
        stats.record_read();
        stats.record_read();
        stats.record_write();
        let snap = stats.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total(), 3);
        stats.reset();
        assert_eq!(stats.snapshot().total(), 0);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = IoSnapshot { reads: 10, writes: 4 };
        let b = IoSnapshot { reads: 3, writes: 1 };
        assert_eq!(a.since(&b), IoSnapshot { reads: 7, writes: 3 });
        assert_eq!(b.since(&a), IoSnapshot { reads: 0, writes: 0 });
        assert_eq!((a + b).total(), 18);
        assert!(a.to_string().contains("14 I/Os"));
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let stats = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().reads, 4000);
    }
}
