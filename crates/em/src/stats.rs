//! I/O accounting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards.  Each thread is pinned to one shard, so
/// concurrent slab workers never contend on the same cache line; snapshots
/// merge all shards into one global view.
const SHARDS: usize = 16;

/// One cache-line-aligned pair of counters, owned (in the common case) by the
/// threads hashed onto it.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Thread-safe counters of block transfers, shared between the simulated disk
/// and the context that owns it.
///
/// Every block read from the disk into the buffer pool and every block written
/// back (on dirty eviction or explicit flush) increments the respective
/// counter.  The paper's performance metric is exactly `reads + writes`
/// ("the number of transferred blocks during the entire process").
///
/// # Concurrency
///
/// Counters are **sharded per thread**: each recording thread increments a
/// private cache-line-aligned shard chosen on first use, and
/// [`snapshot`](IoStats::snapshot) merges the shards.  This keeps the
/// accounting exact under the parallel slab stage of ExactMaxRS without
/// serializing workers on a single hot atomic.
#[derive(Debug, Default)]
pub struct IoStats {
    shards: [Shard; SHARDS],
}

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    fn my_shard(&self) -> &Shard {
        &self.shards[MY_SHARD.with(|&s| s)]
    }

    /// Records one block read.
    pub fn record_read(&self) {
        self.my_shard().reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one block write.
    pub fn record_write(&self) {
        self.my_shard().writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the current counter values, merged over all per-thread shards.
    pub fn snapshot(&self) -> IoSnapshot {
        let mut snap = IoSnapshot::default();
        for shard in &self.shards {
            snap.reads += shard.reads.load(Ordering::Relaxed);
            snap.writes += shard.writes.load(Ordering::Relaxed);
        }
        snap
    }

    /// Resets all shards to zero.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.reads.store(0, Ordering::Relaxed);
            shard.writes.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of blocks read from disk.
    pub reads: u64,
    /// Number of blocks written to disk.
    pub writes: u64,
}

impl IoSnapshot {
    /// Total number of transferred blocks — the paper's I/O cost metric.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;
    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.reads,
            self.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let stats = IoStats::new();
        stats.record_read();
        stats.record_read();
        stats.record_write();
        let snap = stats.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total(), 3);
        stats.reset();
        assert_eq!(stats.snapshot().total(), 0);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = IoSnapshot {
            reads: 10,
            writes: 4,
        };
        let b = IoSnapshot {
            reads: 3,
            writes: 1,
        };
        assert_eq!(
            a.since(&b),
            IoSnapshot {
                reads: 7,
                writes: 3
            }
        );
        assert_eq!(
            b.since(&a),
            IoSnapshot {
                reads: 0,
                writes: 0
            }
        );
        assert_eq!((a + b).total(), 18);
        assert!(a.to_string().contains("14 I/Os"));
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let stats = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().reads, 4000);
    }

    #[test]
    fn shards_merge_into_one_exact_total() {
        use std::sync::Arc;
        // More threads than shards: wrap-around assignment must still produce
        // an exact global count.
        let stats = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..SHARDS * 2 + 3)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.record_read();
                        s.record_write();
                    }
                })
            })
            .collect();
        let n = handles.len() as u64;
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().reads, 100 * n);
        assert_eq!(stats.snapshot().writes, 100 * n);
    }
}
