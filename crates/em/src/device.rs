//! The block-device abstraction behind the EM model.

use crate::{FileId, IoSnapshot, Result};

/// A block-granular storage device: the bottom of the EM stack.
///
/// The paper's cost model counts *block transfers*, not bytes or syscalls, so
/// the device interface is exactly the EM model's: growable files of
/// fixed-size blocks, addressed by `(file, block index)`, with every
/// [`read_block`](BlockDevice::read_block) /
/// [`write_block`](BlockDevice::write_block) recorded in shared [`IoStats`]
/// counters.  Two implementations exist:
///
/// * [`SimDisk`](crate::SimDisk) — RAM-backed, deterministic, the default;
///   what every experiment and test runs against unless told otherwise.
/// * [`FsDisk`](crate::FsDisk) — real files under a temp/configurable
///   directory via `std::fs`, with block-aligned positioned reads and writes.
///
/// Both backends share the *logical* I/O accounting: a block transfer counts
/// as one I/O no matter what the host OS does underneath (page cache,
/// read-ahead, write coalescing).  Paper-style I/O counts are therefore
/// backend-independent — swapping the backend changes wall-clock behaviour,
/// never the counters.  The [`BufferPool`](crate::BufferPool) sits on top and
/// is the only caching layer the model acknowledges; devices must not add
/// caching that changes the counted transfers (every `read_block` /
/// `write_block` call counts as one, whether or not the bytes were already
/// staged).  Physical read-ahead *below* the counters is fine — [`FsDisk`]
/// overlaps the next sequential block's disk read with the caller's compute,
/// which moves wall-clock, never a counter.
///
/// [`FsDisk`]: crate::FsDisk
///
/// All methods take `&self`: devices are internally synchronized and shared
/// across the scoped worker threads of the parallel slab stage
/// (`dyn BlockDevice` must be `Send + Sync`).
///
/// [`IoStats`]: crate::IoStats
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// A short backend name ("sim", "fs") for reports and benchmarks.
    fn backend_name(&self) -> &'static str;

    /// The block size in bytes.
    fn block_size(&self) -> usize;

    /// Allocates a new, empty file and returns its id.  Backends whose
    /// allocation can fail (e.g. a full or vanished filesystem) report
    /// [`EmError::Io`](crate::EmError) instead of panicking.
    fn create_file(&self) -> Result<FileId>;

    /// Removes a file and frees its blocks.  Deleting an unknown file is an
    /// error so that double-deletes are caught early.
    fn delete_file(&self, id: FileId) -> Result<()>;

    /// `true` if the file exists.
    fn file_exists(&self, id: FileId) -> bool;

    /// Number of blocks currently stored for the file.
    fn num_blocks(&self, id: FileId) -> Result<u64>;

    /// `true` if block `idx` of the file has been written to the device.
    fn block_exists(&self, id: FileId, idx: u64) -> bool;

    /// Reads block `idx` of the file into `dst` (which must be exactly one
    /// block long).  Counts one read I/O.
    fn read_block(&self, id: FileId, idx: u64, dst: &mut [u8]) -> Result<()>;

    /// Writes `src` (exactly one block) as block `idx` of the file, growing
    /// the file with zero blocks if `idx` is past the current end (sparse
    /// writes happen when the buffer pool evicts blocks out of order).
    /// Counts one write I/O.
    fn write_block(&self, id: FileId, idx: u64, src: &[u8]) -> Result<()>;

    /// Total number of blocks currently allocated across all files (used by
    /// tests and by the experiment harness to report space usage).
    fn total_blocks(&self) -> u64;

    /// Number of files currently allocated.
    fn num_files(&self) -> usize;

    /// Current logical I/O counter values.
    fn stats(&self) -> IoSnapshot;

    /// Resets the logical I/O counters.
    fn reset_stats(&self);
}
