//! Sequential block-buffered readers and writers of record files.

use std::marker::PhantomData;

use crate::{EmContext, EmError, Record, Result, TupleFile};

/// Appends records to a new file, one block at a time.
///
/// The writer keeps exactly one block of local buffer (the "output block" of
/// the EM model); full blocks are handed to the buffer pool, which writes them
/// to disk lazily (on eviction or flush).
#[derive(Debug)]
pub struct TupleWriter<'a, T: Record> {
    ctx: &'a EmContext,
    file_id: crate::FileId,
    block: Vec<u8>,
    in_block: usize,
    per_block: usize,
    next_block: u64,
    total: u64,
    _marker: PhantomData<fn(T)>,
}

impl<'a, T: Record> TupleWriter<'a, T> {
    pub(crate) fn new(ctx: &'a EmContext) -> Result<Self> {
        let block_size = ctx.config().block_size;
        if T::SIZE > block_size {
            return Err(EmError::RecordTooLarge {
                record_size: T::SIZE,
                block_size,
            });
        }
        Ok(TupleWriter {
            ctx,
            file_id: ctx.create_raw_file()?,
            block: vec![0u8; block_size],
            in_block: 0,
            per_block: block_size / T::SIZE,
            next_block: 0,
            total: 0,
            _marker: PhantomData,
        })
    }

    /// Number of records written so far.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends one record.
    pub fn push(&mut self, rec: &T) -> Result<()> {
        let at = self.in_block * T::SIZE;
        rec.encode(&mut self.block[at..at + T::SIZE]);
        self.in_block += 1;
        self.total += 1;
        if self.in_block == self.per_block {
            self.spill()?;
        }
        Ok(())
    }

    /// Appends every record of the iterator.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) -> Result<()> {
        for rec in iter {
            self.push(&rec)?;
        }
        Ok(())
    }

    /// Flushes the partial block and returns the handle to the finished file.
    pub fn finish(mut self) -> Result<TupleFile<T>> {
        if self.in_block > 0 {
            self.spill()?;
        }
        Ok(TupleFile::from_parts(self.file_id, self.total))
    }

    fn spill(&mut self) -> Result<()> {
        let block = &self.block;
        self.ctx
            .with_block_write(self.file_id, self.next_block, true, |dst| {
                dst.copy_from_slice(block)
            })?;
        self.next_block += 1;
        self.in_block = 0;
        Ok(())
    }
}

/// Sequentially reads a record file, one block at a time.
///
/// The reader keeps one block of local buffer (the "input block" of the EM
/// model) and supports single-record look-ahead via [`peek`](TupleReader::peek),
/// which is what the multiway merges of the sort and of MergeSweep need.
#[derive(Debug)]
pub struct TupleReader<'a, T: Record> {
    ctx: &'a EmContext,
    file_id: crate::FileId,
    num_records: u64,
    per_block: usize,
    pos: u64,
    block: Vec<u8>,
    loaded_block: Option<u64>,
    peeked: Option<T>,
}

impl<'a, T: Record> TupleReader<'a, T> {
    pub(crate) fn new(ctx: &'a EmContext, file: &TupleFile<T>) -> Self {
        let block_size = ctx.config().block_size;
        TupleReader {
            ctx,
            file_id: file.id,
            num_records: file.num_records,
            per_block: block_size / T::SIZE,
            pos: 0,
            block: vec![0u8; block_size],
            loaded_block: None,
            peeked: None,
        }
    }

    /// Total number of records in the file being read.
    pub fn len(&self) -> u64 {
        self.num_records
    }

    /// `true` when the underlying file has no records.
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }

    /// Number of records not yet returned.
    pub fn remaining(&self) -> u64 {
        self.num_records - self.pos + u64::from(self.peeked.is_some())
    }

    /// Returns the next record without consuming it.
    pub fn peek(&mut self) -> Result<Option<&T>> {
        if self.peeked.is_none() {
            self.peeked = self.fetch()?;
        }
        Ok(self.peeked.as_ref())
    }

    /// Returns and consumes the next record, or `None` at end of file.
    pub fn next_record(&mut self) -> Result<Option<T>> {
        if let Some(rec) = self.peeked.take() {
            return Ok(Some(rec));
        }
        self.fetch()
    }

    /// Reads the rest of the file into a vector.
    pub fn read_to_vec(mut self) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    fn fetch(&mut self) -> Result<Option<T>> {
        if self.pos >= self.num_records {
            return Ok(None);
        }
        let block_idx = self.pos / self.per_block as u64;
        let in_block = (self.pos % self.per_block as u64) as usize;
        if self.loaded_block != Some(block_idx) {
            let dst = &mut self.block;
            self.ctx
                .with_block_read(self.file_id, block_idx, |src| dst.copy_from_slice(src))?;
            self.loaded_block = Some(block_idx);
        }
        let at = in_block * T::SIZE;
        let rec = T::decode(&self.block[at..at + T::SIZE]);
        self.pos += 1;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(64, 256).unwrap())
    }

    #[test]
    fn write_read_roundtrip_across_blocks() {
        let ctx = ctx();
        let mut w = ctx.create_writer::<u64>().unwrap();
        for i in 0..1000u64 {
            w.push(&i).unwrap();
        }
        assert_eq!(w.len(), 1000);
        let file = w.finish().unwrap();
        assert_eq!(file.len(), 1000);

        let r = ctx.open_reader(&file);
        assert_eq!(r.len(), 1000);
        let back = r.read_to_vec().unwrap();
        assert_eq!(back, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_file() {
        let ctx = ctx();
        let w = ctx.create_writer::<u64>().unwrap();
        assert!(w.is_empty());
        let file = w.finish().unwrap();
        assert!(file.is_empty());
        let mut r = ctx.open_reader(&file);
        assert!(r.is_empty());
        assert_eq!(r.next_record().unwrap(), None);
        assert_eq!(r.peek().unwrap(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let ctx = ctx();
        let file = ctx.write_all(&[10u64, 20, 30]).unwrap();
        let mut r = ctx.open_reader(&file);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.next_record().unwrap(), Some(10));
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.next_record().unwrap(), Some(20));
        assert_eq!(r.peek().unwrap(), Some(&30));
        assert_eq!(r.next_record().unwrap(), Some(30));
        assert_eq!(r.next_record().unwrap(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn extend_and_partial_blocks() {
        let ctx = ctx();
        let mut w = ctx.create_writer::<u64>().unwrap();
        w.extend(0..13u64).unwrap(); // 64-byte blocks hold 8 records
        let file = w.finish().unwrap();
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back.len(), 13);
        assert_eq!(back[12], 12);
    }

    #[test]
    fn oversized_records_are_rejected() {
        #[derive(Clone)]
        struct Big;
        impl Record for Big {
            const SIZE: usize = 1000;
            fn encode(&self, _: &mut [u8]) {}
            fn decode(_: &[u8]) -> Self {
                Big
            }
        }
        let ctx = ctx();
        assert!(matches!(
            ctx.create_writer::<Big>(),
            Err(EmError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn sequential_scan_costs_linear_io() {
        // 8 records per 64-byte block, buffer of 4 blocks, 64 blocks of data.
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let data: Vec<u64> = (0..512).collect();
        let file = ctx.write_all(&data).unwrap();
        ctx.reset_stats();
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back.len(), 512);
        let stats = ctx.stats();
        // A scan of 64 blocks through a 4-block pool: at least 60 must come
        // from disk, and no more than 64 reads plus a few eviction writes.
        assert!(stats.reads >= 60, "reads = {}", stats.reads);
        assert!(stats.reads <= 64, "reads = {}", stats.reads);
    }
}
