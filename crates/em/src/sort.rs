//! External multiway merge sort.
//!
//! The classic textbook algorithm the paper relies on for its preprocessing
//! step ("the sorting can be done in `O((N/B) log_{M/B}(N/B))` I/Os using the
//! textbook-algorithm external sort"):
//!
//! 1. **Run formation** — read `M` records at a time, sort them in memory and
//!    write each sorted run back to disk.
//! 2. **Merge passes** — repeatedly merge up to `m = Θ(M/B)` runs at a time
//!    (one input block per run plus one output block) until a single run
//!    remains.

use std::cmp::Ordering;

use crate::{EmContext, Record, Result, TupleFile};

/// Sorts `file` with the given comparator and returns a new sorted file.
/// The input file is left untouched; all intermediate runs are deleted.
pub fn external_sort<T, F>(ctx: &EmContext, file: &TupleFile<T>, mut cmp: F) -> Result<TupleFile<T>>
where
    T: Record,
    F: FnMut(&T, &T) -> Ordering,
{
    let mem_records = ctx.config().mem_records::<T>().max(2);
    let fanout = ctx.config().fanout();

    // ---- Pass 0: run formation ----------------------------------------------
    let mut runs: Vec<TupleFile<T>> = Vec::new();
    {
        let mut reader = ctx.open_reader(file);
        loop {
            let mut chunk: Vec<T> = Vec::with_capacity(mem_records.min(file.len() as usize + 1));
            while chunk.len() < mem_records {
                match reader.next_record()? {
                    Some(rec) => chunk.push(rec),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            chunk.sort_by(&mut cmp);
            let mut w = ctx.create_writer::<T>()?;
            for r in &chunk {
                w.push(r)?;
            }
            runs.push(w.finish()?);
        }
    }

    if runs.is_empty() {
        // Empty input: return an empty file.
        return ctx.create_writer::<T>()?.finish();
    }

    // ---- Merge passes --------------------------------------------------------
    while runs.len() > 1 {
        let mut next_runs: Vec<TupleFile<T>> = Vec::new();
        for group in runs.chunks(fanout) {
            let merged = merge_group(ctx, group, &mut cmp)?;
            next_runs.push(merged);
        }
        // Delete the runs of the finished pass.
        for run in runs {
            ctx.delete_file(run)?;
        }
        runs = next_runs;
    }

    Ok(runs.pop().expect("at least one run"))
}

/// Sorts `file` by a key extracted from each record.  The key only needs
/// `PartialOrd` so that `f64` coordinates can be used directly; records whose
/// keys are incomparable (NaN) are treated as equal.
pub fn external_sort_by_key<T, K, F>(
    ctx: &EmContext,
    file: &TupleFile<T>,
    mut key: F,
) -> Result<TupleFile<T>>
where
    T: Record,
    K: PartialOrd,
    F: FnMut(&T) -> K,
{
    external_sort(ctx, file, |a, b| {
        key(a).partial_cmp(&key(b)).unwrap_or(Ordering::Equal)
    })
}

/// Merges a group of sorted runs into a single sorted run.
fn merge_group<T, F>(ctx: &EmContext, group: &[TupleFile<T>], cmp: &mut F) -> Result<TupleFile<T>>
where
    T: Record,
    F: FnMut(&T, &T) -> Ordering,
{
    let mut readers: Vec<_> = group.iter().map(|run| ctx.open_reader(run)).collect();
    let mut writer = ctx.create_writer::<T>()?;
    loop {
        // Find the reader whose head record is smallest.  A linear scan over
        // the (at most `fanout`) readers is simple and fast enough; the I/O
        // cost is unaffected.
        let mut best: Option<usize> = None;
        let mut best_head: Option<T> = None;
        for (i, reader) in readers.iter_mut().enumerate() {
            let head = match reader.peek()? {
                Some(h) => h.clone(),
                None => continue,
            };
            let better = match &best_head {
                None => true,
                Some(bh) => cmp(&head, bh) == Ordering::Less,
            };
            if better {
                best = Some(i);
                best_head = Some(head);
            }
        }
        match best {
            None => break,
            Some(i) => {
                let rec = readers[i].next_record()?.expect("peeked record");
                writer.push(&rec)?;
            }
        }
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn small_ctx() -> EmContext {
        // 64-byte blocks (8 u64 records), 4-block buffer (32 records in memory).
        EmContext::new(EmConfig::new(64, 256).unwrap())
    }

    #[test]
    fn sorts_reverse_sequence() {
        let ctx = small_ctx();
        let data: Vec<u64> = (0..500).rev().collect();
        let file = ctx.write_all(&data).unwrap();
        let sorted = external_sort(&ctx, &file, |a, b| a.cmp(b)).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        assert_eq!(out, (0..500).collect::<Vec<_>>());
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn sorts_with_duplicates_and_custom_order() {
        let ctx = small_ctx();
        let data: Vec<u64> = vec![5, 3, 3, 9, 1, 1, 1, 9, 0, 42, 42, 7];
        let file = ctx.write_all(&data).unwrap();
        let descending = external_sort(&ctx, &file, |a, b| b.cmp(a)).unwrap();
        let out = ctx.read_all(&descending).unwrap();
        let mut expected = data.clone();
        expected.sort_by(|a, b| b.cmp(a));
        assert_eq!(out, expected);
    }

    #[test]
    fn sort_by_float_key() {
        let ctx = small_ctx();
        let data: Vec<f64> = vec![3.5, -1.0, 2.25, -7.5, 0.0, 100.0, -0.5];
        let file = ctx.write_all(&data).unwrap();
        let sorted = external_sort_by_key(&ctx, &file, |x| *x).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        let mut expected = data.clone();
        expected.sort_unstable_by(f64::total_cmp);
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_record_inputs() {
        let ctx = small_ctx();
        let empty = ctx.write_all::<u64>(&[]).unwrap();
        let sorted = external_sort(&ctx, &empty, |a, b| a.cmp(b)).unwrap();
        assert!(sorted.is_empty());

        let single = ctx.write_all(&[99u64]).unwrap();
        let sorted = external_sort(&ctx, &single, |a, b| a.cmp(b)).unwrap();
        assert_eq!(ctx.read_all(&sorted).unwrap(), vec![99]);
    }

    #[test]
    fn input_already_sorted_is_preserved() {
        let ctx = small_ctx();
        let data: Vec<u64> = (0..200).collect();
        let file = ctx.write_all(&data).unwrap();
        let sorted = external_sort(&ctx, &file, |a, b| a.cmp(b)).unwrap();
        assert_eq!(ctx.read_all(&sorted).unwrap(), data);
    }

    #[test]
    fn multi_pass_merge_is_exercised() {
        // Tiny buffer: 2-block pool, fanout 2, 16 records in memory -> a
        // 1000-record input needs ceil(log2(1000/16)) = 6 merge passes.
        let ctx = EmContext::new(EmConfig::new(64, 128).unwrap());
        let mut data: Vec<u64> = (0..1000).collect();
        // Deterministic shuffle.
        let mut state = 0x12345678u64;
        for i in (1..data.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            data.swap(i, j);
        }
        let file = ctx.write_all(&data).unwrap();
        ctx.reset_stats();
        let sorted = external_sort(&ctx, &file, |a, b| a.cmp(b)).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        // Sorting must cost noticeably more than a single scan but stay within
        // a small multiple of N/B per pass.
        let blocks = 1000 / 8;
        let stats = ctx.stats();
        assert!(stats.total() as usize > blocks, "stats = {stats}");
        assert!(
            (stats.total() as usize) < blocks * 40,
            "stats = {stats} should stay near (passes * 2 * N/B)"
        );
    }

    #[test]
    fn io_cost_scales_with_runs_not_quadratically() {
        let ctx = small_ctx();
        let data: Vec<u64> = (0..2048).rev().collect();
        let file = ctx.write_all(&data).unwrap();
        ctx.reset_stats();
        let _sorted = external_sort(&ctx, &file, |a, b| a.cmp(b)).unwrap();
        let blocks = 2048 / 8; // 256 blocks
        let total = ctx.stats().total() as usize;
        // 32 records fit in memory -> 64 runs; fanout 2 -> ~6 merge passes.
        // Each pass reads and writes ~256 blocks: bound by ~2*256*(passes+2).
        assert!(total < 2 * blocks * 10, "total = {total}");
        assert!(total > 2 * blocks, "total = {total}");
    }
}
