//! Fixed-size record serialization.

/// A record that can be stored in an EM file.
///
/// Records have a fixed byte size so that readers and writers can address
/// records inside blocks without any per-record framing.  `SIZE` must be at
/// most the block size of the context the record is used with.
pub trait Record: Clone {
    /// Exact encoded size in bytes.
    const SIZE: usize;

    /// Encodes the record into `buf`, which is exactly `SIZE` bytes long.
    fn encode(&self, buf: &mut [u8]);

    /// Decodes a record from `buf`, which is exactly `SIZE` bytes long.
    fn decode(buf: &[u8]) -> Self;
}

/// Little-endian byte packing helpers for implementing [`Record`].
pub mod codec {
    /// Writes an `f64` at byte offset `at`.
    pub fn put_f64(buf: &mut [u8], at: usize, v: f64) {
        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `f64` from byte offset `at`.
    pub fn get_f64(buf: &[u8], at: usize) -> f64 {
        f64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
    }

    /// Writes a `u64` at byte offset `at`.
    pub fn put_u64(buf: &mut [u8], at: usize, v: u64) {
        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` from byte offset `at`.
    pub fn get_u64(buf: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
    }

    /// Writes a `u32` at byte offset `at`.
    pub fn put_u32(buf: &mut [u8], at: usize, v: u32) {
        buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` from byte offset `at`.
    pub fn get_u32(buf: &[u8], at: usize) -> u32 {
        u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
    }

    /// Writes an `i32` at byte offset `at`.
    pub fn put_i32(buf: &mut [u8], at: usize, v: i32) {
        buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `i32` from byte offset `at`.
    pub fn get_i32(buf: &[u8], at: usize) -> i32 {
        i32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
    }

    /// Writes a `u8` at byte offset `at`.
    pub fn put_u8(buf: &mut [u8], at: usize, v: u8) {
        buf[at] = v;
    }

    /// Reads a `u8` from byte offset `at`.
    pub fn get_u8(buf: &[u8], at: usize) -> u8 {
        buf[at]
    }
}

impl Record for u64 {
    const SIZE: usize = 8;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_u64(buf, 0, *self);
    }
    fn decode(buf: &[u8]) -> Self {
        codec::get_u64(buf, 0)
    }
}

impl Record for f64 {
    const SIZE: usize = 8;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, *self);
    }
    fn decode(buf: &[u8]) -> Self {
        codec::get_f64(buf, 0)
    }
}

impl Record for u32 {
    const SIZE: usize = 4;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_u32(buf, 0, *self);
    }
    fn decode(buf: &[u8]) -> Self {
        codec::get_u32(buf, 0)
    }
}

impl Record for (f64, f64) {
    const SIZE: usize = 16;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.0);
        codec::put_f64(buf, 8, self.1);
    }
    fn decode(buf: &[u8]) -> Self {
        (codec::get_f64(buf, 0), codec::get_f64(buf, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42u32);
        roundtrip(-1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip((3.25f64, -7.5f64));
    }

    #[test]
    fn codec_offsets() {
        let mut buf = vec![0u8; 32];
        codec::put_f64(&mut buf, 0, 1.5);
        codec::put_u64(&mut buf, 8, 77);
        codec::put_u32(&mut buf, 16, 5);
        codec::put_i32(&mut buf, 20, -9);
        codec::put_u8(&mut buf, 24, 3);
        assert_eq!(codec::get_f64(&buf, 0), 1.5);
        assert_eq!(codec::get_u64(&buf, 8), 77);
        assert_eq!(codec::get_u32(&buf, 16), 5);
        assert_eq!(codec::get_i32(&buf, 20), -9);
        assert_eq!(codec::get_u8(&buf, 24), 3);
    }

    #[test]
    fn infinity_and_nan_bits_survive() {
        let mut buf = vec![0u8; 8];
        f64::INFINITY.encode(&mut buf);
        assert_eq!(f64::decode(&buf), f64::INFINITY);
        f64::NAN.encode(&mut buf);
        assert!(f64::decode(&buf).is_nan());
    }
}
