//! Filesystem-backed block device.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::{BlockDevice, EmError, FileId, IoSnapshot, IoStats, Result};

/// Process-wide counter making concurrently created devices unique (used for
/// both temp-directory names and per-device file-name prefixes).
static DEVICE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One backing file: its open handle plus the logical block count.  The
/// handle sits behind an `Arc` so block transfers can run outside the
/// directory lock (the lock is held only to look the handle up).
#[derive(Debug)]
struct FsFile {
    handle: Arc<File>,
    path: PathBuf,
    blocks: u64,
}

/// Positioned one-block read: no shared seek cursor on Unix; elsewhere a
/// seek+read on the (per-call) borrowed handle.
fn pread(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// Positioned one-block write; see [`pread`].
fn pwrite(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

/// A block device backed by real files under a directory via `std::fs`.
///
/// Each EM file becomes one file `blk-<id>.bin` in the device directory;
/// block `idx` lives at byte offset `idx * block_size`, so every access is a
/// block-aligned positioned read or write.  Sparse writes (block written past
/// the current end) leave a hole the filesystem reads back as zeros — the
/// same semantics as [`SimDisk`](crate::SimDisk)'s zero-fill growth.
///
/// The *logical* I/O accounting is identical to the simulated backend: one
/// counted read/write per block transfer, regardless of what the OS page
/// cache does underneath.  Answers and I/O counts are therefore
/// backend-invariant (the backend-parity tests assert exactly that); what
/// changes is that blocks genuinely hit the filesystem.
///
/// # Read-ahead
///
/// Sequential scans dominate the EM algorithms (run formation, merge passes,
/// the sweep itself), so the device double-buffers them: after serving block
/// `idx` it hands block `idx + 1` to a lazily spawned background worker,
/// overlapping the next block's disk read with the caller's compute.  A
/// staged block is served to the matching `read_block` call — which still
/// records one logical read, so I/O counts stay backend-invariant — and any
/// write or delete invalidates staged and in-flight read-ahead, so it can
/// never serve stale bytes.
///
/// # RAII
///
/// Dropping the device removes every backing file, and the directory too when
/// the device created it (the default temp-directory constructor, or a
/// [`new_in`](FsDisk::new_in) path that did not exist yet).  A pre-existing
/// directory passed to `new_in` is left in place with only the device's own
/// block files removed.
///
/// Several devices may share one directory: every device names its files
/// with a process- and instance-unique prefix, so they never truncate or
/// unlink each other's data, and each drop removes only its own files.
#[derive(Debug)]
pub struct FsDisk {
    block_size: usize,
    dir: PathBuf,
    owns_dir: bool,
    /// Process- and instance-unique file-name prefix, so devices sharing a
    /// directory cannot clobber each other's backing files.
    prefix: String,
    files: Mutex<HashMap<FileId, FsFile>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
    /// Double-buffered read-ahead (see the type-level docs): the shared slot
    /// plus the lazily spawned worker thread that fills it.
    prefetch: Arc<Prefetcher>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl FsDisk {
    /// Creates a device with its own fresh directory under the system temp
    /// directory.
    pub fn new(block_size: usize) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "maxrs-fsdisk-{}-{}",
            std::process::id(),
            DEVICE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Self::create(block_size, dir, true)
    }

    /// Creates a device storing its files under `dir` (created if missing;
    /// removed on drop only if this call created it).
    pub fn new_in(dir: impl AsRef<Path>, block_size: usize) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let owns_dir = !dir.exists();
        Self::create(block_size, dir, owns_dir)
    }

    fn create(block_size: usize, dir: PathBuf, owns_dir: bool) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let prefix = format!(
            "blk-{}-{}",
            std::process::id(),
            DEVICE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        Ok(FsDisk {
            block_size,
            dir,
            owns_dir,
            prefix,
            files: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
            prefetch: Arc::new(Prefetcher::new()),
            worker: Mutex::new(None),
        })
    }

    /// Hands the next sequential block to the read-ahead worker (spawned on
    /// first use), so its disk read overlaps the caller's compute.
    fn submit_prefetch(&self, id: FileId, idx: u64, handle: Arc<File>) {
        {
            let mut st = self.prefetch.state.lock();
            if st.shutdown {
                return;
            }
            let epoch = st.epoch;
            st.request = Some(PrefetchRequest {
                id,
                idx,
                handle,
                epoch,
            });
        }
        self.prefetch.wake.notify_one();
        let mut worker = self.worker.lock();
        if worker.is_none() {
            let prefetch = Arc::clone(&self.prefetch);
            let block_size = self.block_size;
            *worker = Some(std::thread::spawn(move || prefetch.run(block_size)));
        }
    }

    /// The directory holding the backing files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shared handle to the I/O counters.
    pub fn stats_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

/// Maps an `std::io` failure into the EM error type.
fn io_err(e: std::io::Error) -> EmError {
    EmError::Io(e.to_string())
}

/// A read-ahead the worker thread should perform: the handle is captured at
/// submit time so the worker never touches the directory map.
struct PrefetchRequest {
    id: FileId,
    idx: u64,
    handle: Arc<File>,
    epoch: u64,
}

/// Double-buffer state shared between callers and the read-ahead worker: at
/// most one pending request and one staged block.  `epoch` invalidates both
/// whenever any block is written or a file is deleted — staleness is decided
/// under the lock, so a staged block is either current or discarded.
struct PrefetchState {
    request: Option<PrefetchRequest>,
    ready: Option<(FileId, u64, u64, Vec<u8>)>,
    epoch: u64,
    shutdown: bool,
}

/// The read-ahead channel: a mutex/condvar pair the lazily spawned worker
/// thread sleeps on.
struct Prefetcher {
    state: Mutex<PrefetchState>,
    wake: Condvar,
}

impl Prefetcher {
    fn new() -> Self {
        Prefetcher {
            state: Mutex::new(PrefetchState {
                request: None,
                ready: None,
                epoch: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Bumps the epoch and drops any staged or pending block: called on every
    /// write and delete, so read-ahead can never serve stale bytes.
    fn invalidate(&self) {
        let mut st = self.state.lock();
        st.epoch += 1;
        st.ready = None;
        st.request = None;
    }

    /// The worker loop: sleep until a request (or shutdown) arrives, read the
    /// block **without counting it**, and stage it if still current.
    fn run(self: Arc<Self>, block_size: usize) {
        loop {
            let req = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(r) = st.request.take() {
                        break r;
                    }
                    self.wake.wait(&mut st);
                }
            };
            let mut buf = vec![0u8; block_size];
            let ok = pread(&req.handle, &mut buf, req.idx * block_size as u64).is_ok();
            let mut st = self.state.lock();
            if ok && st.epoch == req.epoch && !st.shutdown {
                st.ready = Some((req.id, req.idx, req.epoch, buf));
            }
        }
    }
}

impl std::fmt::Debug for Prefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prefetcher").finish_non_exhaustive()
    }
}

impl BlockDevice for FsDisk {
    fn backend_name(&self) -> &'static str {
        "fs"
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create_file(&self) -> Result<FileId> {
        let id = FileId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let path = self.dir.join(format!("{}-{}.bin", self.prefix, id.0));
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err)?;
        self.files.lock().insert(
            id,
            FsFile {
                handle: Arc::new(handle),
                path,
                blocks: 0,
            },
        );
        Ok(id)
    }

    fn delete_file(&self, id: FileId) -> Result<()> {
        self.prefetch.invalidate();
        match self.files.lock().remove(&id) {
            Some(file) => {
                // Close the handle before unlinking (drop order), then remove
                // the backing file; a file the OS already lost is not an
                // error the EM layer can act on.
                let path = file.path.clone();
                drop(file);
                std::fs::remove_file(path).map_err(io_err)
            }
            None => Err(EmError::FileNotFound(id)),
        }
    }

    fn file_exists(&self, id: FileId) -> bool {
        self.files.lock().contains_key(&id)
    }

    fn num_blocks(&self, id: FileId) -> Result<u64> {
        self.files
            .lock()
            .get(&id)
            .map(|f| f.blocks)
            .ok_or(EmError::FileNotFound(id))
    }

    fn block_exists(&self, id: FileId, idx: u64) -> bool {
        self.files
            .lock()
            .get(&id)
            .map(|f| idx < f.blocks)
            .unwrap_or(false)
    }

    fn read_block(&self, id: FileId, idx: u64, dst: &mut [u8]) -> Result<()> {
        assert_eq!(dst.len(), self.block_size, "destination must be one block");
        // Look the handle up under the lock, transfer outside it: the
        // directory mutex never spans a blocking syscall.
        let (handle, blocks) = {
            let files = self.files.lock();
            let file = files.get(&id).ok_or(EmError::FileNotFound(id))?;
            if idx >= file.blocks {
                return Err(EmError::BlockOutOfRange {
                    file: id,
                    block: idx,
                    len: file.blocks,
                });
            }
            (Arc::clone(&file.handle), file.blocks)
        };
        // Serve from the read-ahead slot when it staged exactly this block;
        // the transfer still counts — read-ahead moves wall-clock, never the
        // logical I/O a caller observes.
        let staged = {
            let mut st = self.prefetch.state.lock();
            let epoch = st.epoch;
            match st.ready.take() {
                Some((rid, ridx, repoch, buf)) if rid == id && ridx == idx && repoch == epoch => {
                    Some(buf)
                }
                other => {
                    st.ready = other;
                    None
                }
            }
        };
        match staged {
            Some(buf) => dst.copy_from_slice(&buf),
            None => pread(&handle, dst, idx * self.block_size as u64).map_err(io_err)?,
        }
        self.stats.record_read();
        // Double-buffering: start reading the next sequential block while the
        // caller chews on this one.
        if idx + 1 < blocks {
            self.submit_prefetch(id, idx + 1, handle);
        }
        Ok(())
    }

    fn write_block(&self, id: FileId, idx: u64, src: &[u8]) -> Result<()> {
        assert_eq!(src.len(), self.block_size, "source must be one block");
        let handle = {
            let files = self.files.lock();
            let file = files.get(&id).ok_or(EmError::FileNotFound(id))?;
            Arc::clone(&file.handle)
        };
        // Writing past EOF extends the file with a zero-filled hole, matching
        // the simulated backend's sparse growth.
        pwrite(&handle, src, idx * self.block_size as u64).map_err(io_err)?;
        if let Some(file) = self.files.lock().get_mut(&id) {
            file.blocks = file.blocks.max(idx + 1);
        }
        // Any staged or in-flight read-ahead may now be stale.
        self.prefetch.invalidate();
        self.stats.record_write();
        Ok(())
    }

    fn total_blocks(&self) -> u64 {
        self.files.lock().values().map(|f| f.blocks).sum()
    }

    fn num_files(&self) -> usize {
        self.files.lock().len()
    }

    fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

impl Drop for FsDisk {
    fn drop(&mut self) {
        {
            let mut st = self.prefetch.state.lock();
            st.shutdown = true;
            st.request = None;
            st.ready = None;
        }
        self.prefetch.wake.notify_one();
        if let Some(worker) = self.worker.get_mut().take() {
            let _ = worker.join();
        }
        let mut files = self.files.lock();
        for (_, file) in files.drain() {
            let path = file.path.clone();
            drop(file);
            let _ = std::fs::remove_file(path);
        }
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_roundtrip() {
        let disk = FsDisk::new(64).unwrap();
        let f = disk.create_file().unwrap();
        assert!(disk.file_exists(f));
        assert_eq!(disk.num_blocks(f).unwrap(), 0);

        let data = vec![7u8; 64];
        disk.write_block(f, 0, &data).unwrap();
        disk.write_block(f, 1, &[9u8; 64]).unwrap();
        assert_eq!(disk.num_blocks(f).unwrap(), 2);

        let mut out = vec![0u8; 64];
        disk.read_block(f, 0, &mut out).unwrap();
        assert_eq!(out, data);
        disk.read_block(f, 1, &mut out).unwrap();
        assert_eq!(out[0], 9);

        let snap = disk.stats();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 2);
    }

    #[test]
    fn sparse_writes_read_back_zeros() {
        let disk = FsDisk::new(16).unwrap();
        let f = disk.create_file().unwrap();
        disk.write_block(f, 3, &[1u8; 16]).unwrap();
        assert_eq!(disk.num_blocks(f).unwrap(), 4);
        let mut out = vec![2u8; 16];
        disk.read_block(f, 1, &mut out).unwrap();
        assert_eq!(out, vec![0u8; 16], "filesystem holes read back as zeros");
    }

    #[test]
    fn errors_match_the_simulated_backend() {
        let disk = FsDisk::new(16).unwrap();
        let f = disk.create_file().unwrap();
        let mut buf = vec![0u8; 16];
        assert!(matches!(
            disk.read_block(f, 0, &mut buf),
            Err(EmError::BlockOutOfRange { .. })
        ));
        let ghost = FileId(999);
        assert!(matches!(
            disk.read_block(ghost, 0, &mut buf),
            Err(EmError::FileNotFound(_))
        ));
        assert!(disk.delete_file(ghost).is_err());
        disk.delete_file(f).unwrap();
        assert!(!disk.file_exists(f));
        assert!(disk.delete_file(f).is_err());
    }

    fn block_files_in(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "bin"))
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn drop_removes_backing_files_and_owned_dir() {
        let disk = FsDisk::new(32).unwrap();
        let dir = disk.dir().to_path_buf();
        let f = disk.create_file().unwrap();
        disk.write_block(f, 0, &[1u8; 32]).unwrap();
        assert_eq!(block_files_in(&dir), 1);
        drop(disk);
        assert!(!dir.exists(), "owned temp dir must be removed on drop");
    }

    #[test]
    fn new_in_preexisting_dir_is_kept_but_emptied_of_block_files() {
        let base = std::env::temp_dir().join(format!("maxrs-fsdisk-keep-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        {
            let disk = FsDisk::new_in(&base, 32).unwrap();
            let f = disk.create_file().unwrap();
            disk.write_block(f, 0, &[5u8; 32]).unwrap();
            assert_eq!(block_files_in(&base), 1);
        }
        assert!(base.exists(), "pre-existing dir survives the device");
        assert_eq!(block_files_in(&base), 0, "block files are removed");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn delete_file_unlinks_on_disk() {
        let disk = FsDisk::new(32).unwrap();
        let f = disk.create_file().unwrap();
        disk.write_block(f, 0, &[1u8; 32]).unwrap();
        assert_eq!(block_files_in(disk.dir()), 1);
        disk.delete_file(f).unwrap();
        assert_eq!(block_files_in(disk.dir()), 0);
        assert_eq!(disk.total_blocks(), 0);
    }

    #[test]
    fn sequential_scan_with_read_ahead_is_correct_and_counted() {
        let disk = FsDisk::new(32).unwrap();
        let f = disk.create_file().unwrap();
        const BLOCKS: u64 = 64;
        for i in 0..BLOCKS {
            disk.write_block(f, i, &[i as u8; 32]).unwrap();
        }
        let before = disk.stats();
        let mut buf = vec![0u8; 32];
        for i in 0..BLOCKS {
            disk.read_block(f, i, &mut buf).unwrap();
            assert_eq!(buf, vec![i as u8; 32], "block {i} content");
        }
        // Every transfer counts exactly once, whether the bytes came from the
        // read-ahead slot or straight off the disk.
        let delta = disk.stats().delta(&before);
        assert_eq!(delta.reads, BLOCKS);
        assert_eq!(delta.writes, 0);

        // A second pass (read-ahead slot warm from the first) is identical.
        for i in 0..BLOCKS {
            disk.read_block(f, i, &mut buf).unwrap();
            assert_eq!(buf, vec![i as u8; 32]);
        }
        assert_eq!(disk.stats().delta(&before).reads, 2 * BLOCKS);
    }

    #[test]
    fn read_ahead_never_serves_stale_bytes_after_a_write() {
        let disk = FsDisk::new(16).unwrap();
        let f = disk.create_file().unwrap();
        disk.write_block(f, 0, &[1u8; 16]).unwrap();
        disk.write_block(f, 1, &[2u8; 16]).unwrap();
        let mut buf = vec![0u8; 16];
        for _ in 0..100 {
            // Reading block 0 schedules read-ahead of block 1; overwrite
            // block 1 while that may be in flight, then read it.
            disk.read_block(f, 0, &mut buf).unwrap();
            disk.write_block(f, 1, &[3u8; 16]).unwrap();
            disk.read_block(f, 1, &mut buf).unwrap();
            assert_eq!(buf, vec![3u8; 16], "stale read-ahead served");
            disk.write_block(f, 1, &[2u8; 16]).unwrap();
        }
    }

    #[test]
    fn read_ahead_survives_file_deletion() {
        let disk = FsDisk::new(16).unwrap();
        let f = disk.create_file().unwrap();
        disk.write_block(f, 0, &[1u8; 16]).unwrap();
        disk.write_block(f, 1, &[2u8; 16]).unwrap();
        let mut buf = vec![0u8; 16];
        disk.read_block(f, 0, &mut buf).unwrap(); // schedules block 1
        disk.delete_file(f).unwrap();
        // A fresh file reuses ids freely; its blocks must not be shadowed.
        let g = disk.create_file().unwrap();
        disk.write_block(g, 0, &[7u8; 16]).unwrap();
        disk.write_block(g, 1, &[8u8; 16]).unwrap();
        disk.read_block(g, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![8u8; 16]);
    }

    #[test]
    fn devices_sharing_a_directory_do_not_clobber_each_other() {
        let base = std::env::temp_dir().join(format!("maxrs-fsdisk-share-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        {
            let a = FsDisk::new_in(&base, 32).unwrap();
            let fa = a.create_file().unwrap();
            a.write_block(fa, 0, &[1u8; 32]).unwrap();

            // A second device in the same directory allocates the same
            // FileId(0) but must not truncate or shadow `a`'s backing file.
            let b = FsDisk::new_in(&base, 32).unwrap();
            let fb = b.create_file().unwrap();
            b.write_block(fb, 0, &[2u8; 32]).unwrap();

            let mut out = vec![0u8; 32];
            a.read_block(fa, 0, &mut out).unwrap();
            assert_eq!(out[0], 1, "device A's data survived device B");
            b.read_block(fb, 0, &mut out).unwrap();
            assert_eq!(out[0], 2);

            // Dropping B removes only B's files.
            drop(b);
            a.read_block(fa, 0, &mut out).unwrap();
            assert_eq!(out[0], 1, "device A's file survived device B's drop");
        }
        assert_eq!(block_files_in(&base), 0);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
