//! One-pass sequential merge of a sorted file with in-memory updates.
//!
//! The update-propagation primitive of a delta-main design: a disk-resident
//! **main** run (already sorted) absorbs an in-memory **delta** of updates in
//! a single `O(N/B)` sequential pass — one streaming read of the base, one
//! streaming write of the output, no external sort.  Deletions ride along as
//! a `retain` filter evaluated on each base record during the same pass, so
//! propagating any mix of inserts and deletes costs at most
//! `read(N/B) + write((N + U)/B)` block transfers — the 2·N/B merge floor the
//! compaction tests assert against with [`IoSnapshot`](crate::IoSnapshot)
//! math.

use std::cmp::Ordering;

use crate::{EmContext, Record, Result, TupleFile};

/// Merges `updates` (sorted under `cmp`) into the sorted `base` file,
/// returning a new sorted file; `base` is left untouched.
///
/// Every base record is offered to `retain` first — returning `false` drops
/// it from the output (the delete/tombstone path; the closure may be
/// stateful, e.g. a multiset of pending tombstones).  Records comparing
/// equal are emitted **base first**, so the merge is stable in the
/// main-before-delta sense.
///
/// Cost: one sequential read of `base` plus one sequential write of the
/// output; `updates` lives in memory and is free under the EM model.
///
/// ```
/// use maxrs_em::{merge_run, EmConfig, EmContext};
///
/// let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
/// let base = ctx.write_all(&[1u64, 3, 5, 7]).unwrap();
/// let merged = merge_run(&ctx, &base, &[2u64, 6], |a, b| a.cmp(b), |&r| r != 5).unwrap();
/// assert_eq!(ctx.read_all(&merged).unwrap(), vec![1, 2, 3, 6, 7]);
/// ```
pub fn merge_run<T, C, P>(
    ctx: &EmContext,
    base: &TupleFile<T>,
    updates: &[T],
    mut cmp: C,
    mut retain: P,
) -> Result<TupleFile<T>>
where
    T: Record,
    C: FnMut(&T, &T) -> Ordering,
    P: FnMut(&T) -> bool,
{
    debug_assert!(
        updates
            .windows(2)
            .all(|w| cmp(&w[0], &w[1]) != Ordering::Greater),
        "updates must be sorted under cmp"
    );
    let mut reader = ctx.open_reader(base);
    let mut writer = ctx.create_writer::<T>()?;
    let mut next_update = 0usize;
    // Invariant: `head` is the next surviving base record, or None when the
    // base is exhausted.
    let mut head = next_retained(&mut reader, &mut retain)?;
    loop {
        match (&head, updates.get(next_update)) {
            (None, None) => break,
            (Some(_), None) => {
                let rec = head.take().expect("checked Some");
                writer.push(&rec)?;
                head = next_retained(&mut reader, &mut retain)?;
            }
            (None, Some(u)) => {
                writer.push(u)?;
                next_update += 1;
            }
            (Some(b), Some(u)) => {
                // Ties emit the base record first.
                if cmp(b, u) != Ordering::Greater {
                    let rec = head.take().expect("checked Some");
                    writer.push(&rec)?;
                    head = next_retained(&mut reader, &mut retain)?;
                } else {
                    writer.push(u)?;
                    next_update += 1;
                }
            }
        }
    }
    writer.finish()
}

/// Advances `reader` to its next record passing `retain`.
fn next_retained<T, P>(reader: &mut crate::TupleReader<'_, T>, retain: &mut P) -> Result<Option<T>>
where
    T: Record,
    P: FnMut(&T) -> bool,
{
    while let Some(rec) = reader.next_record()? {
        if retain(&rec) {
            return Ok(Some(rec));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn small_ctx() -> EmContext {
        // 64-byte blocks (8 u64 records), 4-block buffer.
        EmContext::new(EmConfig::new(64, 256).unwrap())
    }

    fn asc(a: &u64, b: &u64) -> Ordering {
        a.cmp(b)
    }

    #[test]
    fn merges_interleaved_updates() {
        let ctx = small_ctx();
        let base = ctx.write_all(&[0u64, 10, 20, 30, 40]).unwrap();
        let merged = merge_run(&ctx, &base, &[5u64, 25, 50], asc, |_| true).unwrap();
        assert_eq!(
            ctx.read_all(&merged).unwrap(),
            vec![0, 5, 10, 20, 25, 30, 40, 50]
        );
        // The input file survives untouched.
        assert_eq!(ctx.read_all(&base).unwrap(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn empty_base_and_empty_updates() {
        let ctx = small_ctx();
        let empty = ctx.write_all::<u64>(&[]).unwrap();
        let merged = merge_run(&ctx, &empty, &[1u64, 2], asc, |_| true).unwrap();
        assert_eq!(ctx.read_all(&merged).unwrap(), vec![1, 2]);

        let base = ctx.write_all(&[4u64, 9]).unwrap();
        let merged = merge_run(&ctx, &base, &[], asc, |_| true).unwrap();
        assert_eq!(ctx.read_all(&merged).unwrap(), vec![4, 9]);

        let merged = merge_run(&ctx, &empty, &[], asc, |_| true).unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn retain_filters_base_records_only() {
        let ctx = small_ctx();
        let base = ctx.write_all(&[1u64, 2, 3, 4, 5]).unwrap();
        // Drop even base records; an even *update* must still come through.
        let merged = merge_run(&ctx, &base, &[2u64], asc, |&r| r % 2 == 1).unwrap();
        assert_eq!(ctx.read_all(&merged).unwrap(), vec![1, 2, 3, 5]);
    }

    #[test]
    fn stateful_retain_drops_a_counted_multiset() {
        let ctx = small_ctx();
        let base = ctx.write_all(&[7u64, 7, 7, 9]).unwrap();
        // A tombstone multiset: drop exactly two of the three 7s.
        let mut sevens_to_drop = 2;
        let merged = merge_run(&ctx, &base, &[], asc, |&r| {
            if r == 7 && sevens_to_drop > 0 {
                sevens_to_drop -= 1;
                false
            } else {
                true
            }
        })
        .unwrap();
        assert_eq!(ctx.read_all(&merged).unwrap(), vec![7, 9]);
    }

    #[test]
    fn ties_emit_base_records_first() {
        let ctx = small_ctx();
        // Records carry a payload in the high bits; the comparator only sees
        // the low byte, so tie order is observable.
        let key = |r: &u64| r & 0xff;
        let base = ctx.write_all(&[0x0105u64, 0x0207]).unwrap();
        let updates = [0x1105u64, 0x1207];
        let merged =
            merge_run(&ctx, &base, &updates, |a, b| key(a).cmp(&key(b)), |_| true).unwrap();
        assert_eq!(
            ctx.read_all(&merged).unwrap(),
            vec![0x0105, 0x1105, 0x0207, 0x1207]
        );
    }

    #[test]
    fn io_cost_is_one_read_plus_one_write_pass() {
        let ctx = small_ctx();
        let n: u64 = 2048;
        let base_data: Vec<u64> = (0..n).map(|i| i * 2).collect();
        let base = ctx.write_all(&base_data).unwrap();
        ctx.flush_all().unwrap();
        let updates: Vec<u64> = (0..64u64).map(|i| i * 64 + 1).collect();
        let before = ctx.stats();
        let merged = merge_run(&ctx, &base, &updates, asc, |_| true).unwrap();
        ctx.flush_file(&merged).unwrap();
        let io = ctx.stats().since(&before);
        let block_records = 64 / 8;
        let base_blocks = n.div_ceil(block_records);
        let out_blocks = (n + 64).div_ceil(block_records);
        // One sequential read of the base...
        assert!(io.reads >= base_blocks, "io = {io}");
        assert!(io.reads <= base_blocks + 2, "io = {io}");
        // ...and one sequential write of the output: within a whisker of the
        // 2·N/B merge floor, nothing quadratic.
        assert!(io.writes >= out_blocks, "io = {io}");
        assert!(io.writes <= out_blocks + 2, "io = {io}");
        assert_eq!(merged.len(), n + 64);
    }
}
