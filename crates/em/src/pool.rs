//! Bounded buffer pool with CLOCK (second-chance) replacement.

use std::collections::HashMap;

use crate::{BlockDevice, FileId, Result};

/// Key of a cached block.
type BlockKey = (FileId, u64);

#[derive(Debug)]
struct Frame {
    key: Option<BlockKey>,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

/// A bounded pool of block-sized frames standing in for the main-memory
/// buffer of the EM model.
///
/// All block accesses of the algorithms go through the pool.  A *hit* costs no
/// I/O; a *miss* reads the block from the [`BlockDevice`] (one read I/O) after
/// possibly evicting a victim frame chosen by the CLOCK policy (one write I/O
/// if the victim is dirty).  The pool capacity equals
/// [`EmConfig::buffer_blocks`](crate::EmConfig::buffer_blocks), so varying the
/// buffer size in the experiments directly changes hit rates — exactly the
/// effect studied in Figures 13 and 15 of the paper.
#[derive(Debug)]
pub struct BufferPool {
    block_size: usize,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<BlockKey, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool with room for `capacity` blocks of `block_size` bytes.
    pub fn new(capacity: usize, block_size: usize) -> Self {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        BufferPool {
            block_size,
            capacity,
            frames: Vec::new(),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of cached blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters — useful for diagnosing cache behaviour in the
    /// experiment harness.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `true` if the given block is currently cached.
    pub fn contains(&self, file: FileId, block: u64) -> bool {
        self.map.contains_key(&(file, block))
    }

    /// Runs `f` on the (read-only) contents of a block, fetching it from disk
    /// on a miss.
    pub fn with_read<R>(
        &mut self,
        disk: &dyn BlockDevice,
        file: FileId,
        block: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let slot = self.acquire(disk, file, block, false)?;
        self.frames[slot].referenced = true;
        Ok(f(&self.frames[slot].data))
    }

    /// Runs `f` on the mutable contents of a block and marks it dirty.
    ///
    /// When `create` is `true` and the block is neither cached nor on disk,
    /// the frame is zero-initialized instead of being read (used by appending
    /// writers); otherwise a miss fetches the current contents from disk
    /// (read-modify-write, used by the update-in-place index baselines).
    pub fn with_write<R>(
        &mut self,
        disk: &dyn BlockDevice,
        file: FileId,
        block: u64,
        create: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let slot = self.acquire(disk, file, block, create)?;
        let frame = &mut self.frames[slot];
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Writes every dirty cached block of `file` back to disk.
    pub fn flush_file(&mut self, disk: &dyn BlockDevice, file: FileId) -> Result<()> {
        for slot in 0..self.frames.len() {
            if let Some((fid, block)) = self.frames[slot].key {
                if fid == file && self.frames[slot].dirty {
                    disk.write_block(fid, block, &self.frames[slot].data)?;
                    self.frames[slot].dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Writes every dirty cached block back to disk.
    pub fn flush_all(&mut self, disk: &dyn BlockDevice) -> Result<()> {
        for slot in 0..self.frames.len() {
            if let Some((fid, block)) = self.frames[slot].key {
                if self.frames[slot].dirty {
                    disk.write_block(fid, block, &self.frames[slot].data)?;
                    self.frames[slot].dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Discards all cached blocks of `file` *without* flushing them (used when
    /// a temporary file is deleted: its pending writes will never be needed).
    pub fn drop_file(&mut self, file: FileId) {
        for slot in 0..self.frames.len() {
            if let Some((fid, _)) = self.frames[slot].key {
                if fid == file {
                    let key = self.frames[slot].key.take().unwrap();
                    self.map.remove(&key);
                    self.frames[slot].dirty = false;
                    self.frames[slot].referenced = false;
                }
            }
        }
    }

    /// Returns the frame slot holding the requested block, loading or creating
    /// it if necessary.
    fn acquire(
        &mut self,
        disk: &dyn BlockDevice,
        file: FileId,
        block: u64,
        create: bool,
    ) -> Result<usize> {
        if let Some(&slot) = self.map.get(&(file, block)) {
            self.hits += 1;
            return Ok(slot);
        }
        self.misses += 1;
        let slot = self.free_slot(disk)?;
        if !create && disk.block_exists(file, block) {
            // Split borrow: read into the frame buffer directly.
            disk.read_block(file, block, &mut self.frames[slot].data)?;
        } else if create {
            self.frames[slot].data.fill(0);
        } else {
            // Reading a block that exists neither in the pool nor on disk.
            disk.read_block(file, block, &mut self.frames[slot].data)?;
        }
        self.frames[slot].key = Some((file, block));
        self.frames[slot].dirty = false;
        self.frames[slot].referenced = true;
        self.map.insert((file, block), slot);
        Ok(slot)
    }

    /// Finds a free frame, evicting a victim chosen by CLOCK if the pool is
    /// full.  Dirty victims are written back to disk.
    fn free_slot(&mut self, disk: &dyn BlockDevice) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                key: None,
                data: vec![0u8; self.block_size].into_boxed_slice(),
                dirty: false,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[slot];
            if frame.key.is_none() {
                return Ok(slot);
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            // Evict this frame.
            let (fid, block) = frame.key.take().unwrap();
            self.map.remove(&(fid, block));
            if frame.dirty {
                // The file may have been deleted while its blocks were cached;
                // in that case the pending write is simply discarded.
                if disk.file_exists(fid) {
                    disk.write_block(fid, block, &frame.data)?;
                }
                frame.dirty = false;
            }
            return Ok(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsDisk, SimDisk};

    /// Runs a test body against both backends: the RAM simulation and the
    /// filesystem device.  Pool behaviour — hit/miss accounting, CLOCK
    /// eviction, dirty write-back, `flush_file` / `drop_file` — must be
    /// byte- and count-identical under the [`BlockDevice`] trait.
    fn on_both_backends(capacity: usize, test: impl Fn(&dyn BlockDevice, BufferPool, FileId)) {
        let sim = SimDisk::new(32);
        let file = BlockDevice::create_file(&sim).unwrap();
        test(&sim, BufferPool::new(capacity, 32), file);

        let fs = FsDisk::new(32).unwrap();
        let file = fs.create_file().unwrap();
        test(&fs, BufferPool::new(capacity, 32), file);
    }

    #[test]
    fn cached_reads_cost_no_io() {
        on_both_backends(4, |disk, mut pool, file| {
            disk.write_block(file, 0, &[5u8; 32]).unwrap();
            disk.reset_stats();

            let v = pool.with_read(disk, file, 0, |data| data[0]).unwrap();
            assert_eq!(v, 5);
            assert_eq!(disk.stats().reads, 1);

            for _ in 0..10 {
                pool.with_read(disk, file, 0, |data| data[0]).unwrap();
            }
            assert_eq!(disk.stats().reads, 1, "repeated reads must hit the pool");
            let (hits, misses) = pool.hit_stats();
            assert_eq!(misses, 1);
            assert_eq!(hits, 10);
        });
    }

    #[test]
    fn eviction_writes_back_dirty_blocks() {
        on_both_backends(2, |disk, mut pool, file| {
            // Create three dirty blocks through a capacity-2 pool.
            for b in 0..3u64 {
                pool.with_write(disk, file, b, true, |data| data[0] = b as u8 + 1)
                    .unwrap();
            }
            // At least one block must have been evicted and written to disk.
            assert!(disk.stats().writes >= 1);
            pool.flush_all(disk).unwrap();
            disk.reset_stats();
            // All three blocks are now readable from disk with the right
            // contents.
            let mut fresh = BufferPool::new(2, 32);
            for b in 0..3u64 {
                let v = fresh.with_read(disk, file, b, |data| data[0]).unwrap();
                assert_eq!(v, b as u8 + 1);
            }
        });
    }

    #[test]
    fn dirty_write_back_order_is_clock_order() {
        on_both_backends(3, |disk, mut pool, file| {
            // Fill the pool with three dirty blocks, then touch a fourth:
            // CLOCK must evict block 0 first (oldest unreferenced), and the
            // device must see exactly that block written back.
            for b in 0..3u64 {
                pool.with_write(disk, file, b, true, |data| data[0] = 10 + b as u8)
                    .unwrap();
            }
            disk.reset_stats();
            pool.with_write(disk, file, 3, true, |data| data[0] = 13)
                .unwrap();
            assert_eq!(disk.stats().writes, 1, "exactly one victim written back");
            assert!(disk.block_exists(file, 0), "block 0 was the CLOCK victim");
            let mut out = vec![0u8; 32];
            disk.read_block(file, 0, &mut out).unwrap();
            assert_eq!(out[0], 10);
        });
    }

    #[test]
    fn create_does_not_read_from_disk() {
        on_both_backends(4, |disk, mut pool, file| {
            pool.with_write(disk, file, 0, true, |data| data[0] = 42)
                .unwrap();
            assert_eq!(disk.stats().reads, 0);
            assert_eq!(disk.stats().writes, 0, "nothing evicted or flushed yet");
            let v = pool.with_read(disk, file, 0, |d| d[0]).unwrap();
            assert_eq!(v, 42);
            assert_eq!(disk.stats().total(), 0, "block served from the pool");
        });
    }

    #[test]
    fn read_modify_write_fetches_existing_block() {
        on_both_backends(4, |disk, mut pool, file| {
            disk.write_block(file, 0, &[9u8; 32]).unwrap();
            disk.reset_stats();
            pool.with_write(disk, file, 0, false, |data| {
                assert_eq!(data[0], 9);
                data[0] = 10;
            })
            .unwrap();
            assert_eq!(disk.stats().reads, 1);
            pool.flush_file(disk, file).unwrap();
            let mut out = vec![0u8; 32];
            disk.read_block(file, 0, &mut out).unwrap();
            assert_eq!(out[0], 10);
        });
    }

    #[test]
    fn flush_file_only_touches_that_file() {
        on_both_backends(4, |disk, mut pool, file| {
            let other = disk.create_file().unwrap();
            pool.with_write(disk, file, 0, true, |d| d[0] = 1).unwrap();
            pool.with_write(disk, other, 0, true, |d| d[0] = 2).unwrap();
            disk.reset_stats();
            pool.flush_file(disk, file).unwrap();
            assert_eq!(disk.stats().writes, 1, "only `file`'s dirty block flushed");
            assert!(disk.block_exists(file, 0));
            assert!(!disk.block_exists(other, 0), "other file still pool-only");
            // The other file's block stays dirty and flushes later.
            pool.flush_all(disk).unwrap();
            assert!(disk.block_exists(other, 0));
        });
    }

    #[test]
    fn drop_file_discards_dirty_blocks() {
        on_both_backends(4, |disk, mut pool, file| {
            pool.with_write(disk, file, 0, true, |data| data[0] = 1)
                .unwrap();
            pool.drop_file(file);
            assert_eq!(pool.len(), 0);
            pool.flush_all(disk).unwrap();
            assert_eq!(disk.stats().writes, 0);
        });
    }

    #[test]
    fn capacity_is_respected() {
        on_both_backends(3, |disk, mut pool, file| {
            for b in 0..10u64 {
                pool.with_write(disk, file, b, true, |d| d[0] = b as u8)
                    .unwrap();
            }
            assert!(pool.len() <= 3);
            assert_eq!(pool.capacity(), 3);
            assert!(!pool.is_empty());
        });
    }

    #[test]
    fn eviction_of_deleted_file_block_is_silent() {
        on_both_backends(2, |disk, mut pool, file| {
            pool.with_write(disk, file, 0, true, |d| d[0] = 1).unwrap();
            disk.delete_file(file).unwrap();
            // Fill the pool with another file; evicting the stale dirty block
            // must not fail even though its file is gone.
            let other = disk.create_file().unwrap();
            for b in 0..4u64 {
                pool.with_write(disk, other, b, true, |d| d[0] = b as u8)
                    .unwrap();
            }
        });
    }

    #[test]
    fn hit_and_miss_counters_are_backend_independent() {
        // The same access pattern must produce identical pool statistics and
        // identical logical I/O on both backends.
        let mut results = Vec::new();
        on_both_backends(2, |disk, mut pool, file| {
            for b in 0..4u64 {
                pool.with_write(disk, file, b, true, |d| d[0] = b as u8)
                    .unwrap();
            }
            for b in (0..4u64).rev() {
                pool.with_read(disk, file, b, |d| d[0]).unwrap();
            }
            pool.flush_all(disk).unwrap();
        });
        // Re-run capturing the counters (closure above can't return them).
        for run in 0..2 {
            let sim;
            let fs;
            let disk: &dyn BlockDevice = if run == 0 {
                sim = SimDisk::new(32);
                &sim
            } else {
                fs = FsDisk::new(32).unwrap();
                &fs
            };
            let mut pool = BufferPool::new(2, 32);
            let file = disk.create_file().unwrap();
            for b in 0..4u64 {
                pool.with_write(disk, file, b, true, |d| d[0] = b as u8)
                    .unwrap();
            }
            for b in (0..4u64).rev() {
                pool.with_read(disk, file, b, |d| d[0]).unwrap();
            }
            pool.flush_all(disk).unwrap();
            results.push((pool.hit_stats(), disk.stats()));
        }
        assert_eq!(
            results[0], results[1],
            "sim vs fs pool/I-O counters diverged"
        );
    }
}
