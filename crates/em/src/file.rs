//! Typed handles to record files.

use std::marker::PhantomData;

use crate::{FileId, Record};

/// A handle to a file of `T` records on the simulated disk.
///
/// The handle is cheap to clone and carries the record count, which is all a
/// sequential reader needs (files are densely packed, `records_per_block`
/// records per block, no per-record framing).
#[derive(Debug)]
pub struct TupleFile<T: Record> {
    pub(crate) id: FileId,
    pub(crate) num_records: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T: Record> TupleFile<T> {
    /// Creates a handle from raw parts (used by writers and by the sort).
    pub(crate) fn from_parts(id: FileId, num_records: u64) -> Self {
        TupleFile {
            id,
            num_records,
            _marker: PhantomData,
        }
    }

    /// The underlying file id.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Number of records in the file.
    pub fn len(&self) -> u64 {
        self.num_records
    }

    /// `true` when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }
}

impl<T: Record> Clone for TupleFile<T> {
    fn clone(&self) -> Self {
        TupleFile {
            id: self.id,
            num_records: self.num_records,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_accessors() {
        let f: TupleFile<u64> = TupleFile::from_parts(FileId(3), 10);
        assert_eq!(f.id(), FileId(3));
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
        let g = f.clone();
        assert_eq!(g.id(), f.id());
        let empty: TupleFile<u64> = TupleFile::from_parts(FileId(4), 0);
        assert!(empty.is_empty());
    }
}
