//! External-memory (EM) model substrate for the MaxRS reproduction.
//!
//! The paper evaluates algorithms by their **I/O cost** — the number of blocks
//! transferred between disk and a bounded main-memory buffer — under the
//! standard EM model with parameters
//!
//! * `N` — number of records,
//! * `M` — number of records that fit in main memory,
//! * `B` — number of records per disk block.
//!
//! This crate provides a faithful, deterministic simulation of that model:
//!
//! * [`BlockDevice`] — the block-device trait every backend implements, with
//!   every block read and write counted in an [`IoStats`] counter,
//! * [`SimDisk`] — the RAM-backed simulated device (default backend),
//! * [`FsDisk`] — a filesystem-backed device storing blocks in real files
//!   under a temp/configurable directory (select with
//!   [`StorageBackend::Fs`] or `MAXRS_BACKEND=fs`); logical I/O counts are
//!   identical across backends,
//! * [`BufferPool`] — a bounded buffer of block frames with CLOCK
//!   (second-chance) replacement; only pool *misses* and dirty *evictions*
//!   touch the disk and therefore cost I/O,
//! * [`Record`] — fixed-size record serialization,
//! * [`TupleFile`], [`TupleWriter`], [`TupleReader`] — sequential,
//!   block-buffered record files,
//! * [`external_sort`] — multiway external merge sort with
//!   `O((N/B) log_{M/B}(N/B))` I/Os,
//! * [`merge_run`] — one-pass sequential merge of a sorted file with
//!   in-memory updates (the delta-main compaction primitive),
//! * [`EmContext`] — ties the above together with an [`EmConfig`] holding the
//!   block size and buffer size (the knobs varied in Figures 13 and 15).
//!
//! # Example
//!
//! ```
//! use maxrs_em::{EmConfig, EmContext, Record};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Row(u64);
//! impl Record for Row {
//!     const SIZE: usize = 8;
//!     fn encode(&self, buf: &mut [u8]) { buf.copy_from_slice(&self.0.to_le_bytes()); }
//!     fn decode(buf: &[u8]) -> Self { Row(u64::from_le_bytes(buf.try_into().unwrap())) }
//! }
//!
//! let ctx = EmContext::new(EmConfig::new(4096, 64 * 1024).unwrap());
//! let file = ctx.write_all(&(0..1000u64).map(Row).collect::<Vec<_>>()).unwrap();
//! let back = ctx.read_all(&file).unwrap();
//! assert_eq!(back.len(), 1000);
//! ctx.flush_all().unwrap(); // force dirty blocks to disk so they are counted
//! assert!(ctx.stats().total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod context;
mod device;
mod disk;
mod error;
mod file;
mod fsdisk;
mod merge;
mod pool;
mod record;
mod rw;
mod sort;
mod stats;

pub use config::{EmConfig, StorageBackend};
pub use context::EmContext;
pub use device::BlockDevice;
pub use disk::{FileId, SimDisk};
pub use error::EmError;
pub use file::TupleFile;
pub use fsdisk::FsDisk;
pub use merge::merge_run;
pub use pool::BufferPool;
pub use record::{codec, Record};
pub use rw::{TupleReader, TupleWriter};
pub use sort::{external_sort, external_sort_by_key};
pub use stats::{measure_thread_io, IoSnapshot, IoStats};

/// Convenience result alias used throughout the EM layer.
pub type Result<T> = std::result::Result<T, EmError>;
