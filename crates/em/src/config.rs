//! EM model configuration: block size, buffer (main memory) size and the
//! storage backend.

use std::sync::OnceLock;

use crate::{EmError, Record, Result};

/// Which [`BlockDevice`](crate::BlockDevice) implementation an
/// [`EmContext`](crate::EmContext) runs against.
///
/// The default comes from the `MAXRS_BACKEND` environment variable (read once
/// per process): `fs` selects the filesystem backend, anything else — or an
/// unset variable — the RAM-backed simulation.  This is the knob CI's
/// backend matrix turns to run the whole test suite against real files.
/// Logical I/O counts are identical across backends (see
/// [`BlockDevice`](crate::BlockDevice)), so switching backends never changes
/// a paper-style measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageBackend {
    /// RAM-backed [`SimDisk`](crate::SimDisk): deterministic, no filesystem
    /// interaction, the default.
    #[default]
    Sim,
    /// Filesystem-backed [`FsDisk`](crate::FsDisk): real files under a temp
    /// directory (or a caller-chosen one via
    /// [`EmContext::with_device`](crate::EmContext::with_device)).
    Fs,
}

impl StorageBackend {
    /// A short human-readable name ("sim", "fs").
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::Sim => "sim",
            StorageBackend::Fs => "fs",
        }
    }

    /// The backend selected by the `MAXRS_BACKEND` environment variable
    /// (`fs` → [`StorageBackend::Fs`], otherwise [`StorageBackend::Sim`]),
    /// cached after the first read.
    pub fn from_env() -> Self {
        static FROM_ENV: OnceLock<StorageBackend> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("MAXRS_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("fs") => StorageBackend::Fs,
            _ => StorageBackend::Sim,
        })
    }
}

/// Configuration of the external-memory model.
///
/// Mirrors the knobs of the paper's Table 3: the disk *block size* (default
/// 4 KB) and the *buffer size* — the amount of main memory an algorithm may
/// use (default 256 KB for the real datasets and 1024 KB for the synthetic
/// ones) — plus the [`StorageBackend`] the context's block device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Size of one disk block in bytes.
    pub block_size: usize,
    /// Size of the main-memory buffer in bytes.
    pub buffer_bytes: usize,
    /// Which block-device implementation backs the context (default: from
    /// `MAXRS_BACKEND`, falling back to the RAM simulation).
    pub backend: StorageBackend,
}

impl EmConfig {
    /// Default block size used throughout the paper (4 KB).
    pub const DEFAULT_BLOCK_SIZE: usize = 4096;
    /// Default buffer size used for the synthetic experiments (1024 KB).
    pub const DEFAULT_BUFFER_BYTES: usize = 1024 * 1024;

    /// Creates a configuration, validating that the buffer holds at least two
    /// blocks (the EM model's `M ≥ 2B` assumption) and that the block size is
    /// positive.
    pub fn new(block_size: usize, buffer_bytes: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(EmError::InvalidConfig("block size must be positive".into()));
        }
        if buffer_bytes < 2 * block_size {
            return Err(EmError::InvalidConfig(format!(
                "buffer ({buffer_bytes} B) must hold at least two blocks of {block_size} B"
            )));
        }
        Ok(EmConfig {
            block_size,
            buffer_bytes,
            backend: StorageBackend::from_env(),
        })
    }

    /// The same configuration with an explicit storage backend, overriding
    /// the `MAXRS_BACKEND` default.
    pub fn with_backend(self, backend: StorageBackend) -> Self {
        EmConfig { backend, ..self }
    }

    /// The paper's default configuration for synthetic datasets
    /// (4 KB blocks, 1024 KB buffer).
    pub fn paper_synthetic() -> Self {
        EmConfig {
            block_size: Self::DEFAULT_BLOCK_SIZE,
            buffer_bytes: Self::DEFAULT_BUFFER_BYTES,
            backend: StorageBackend::from_env(),
        }
    }

    /// The paper's default configuration for real datasets
    /// (4 KB blocks, 256 KB buffer).
    pub fn paper_real() -> Self {
        EmConfig {
            block_size: Self::DEFAULT_BLOCK_SIZE,
            buffer_bytes: 256 * 1024,
            backend: StorageBackend::from_env(),
        }
    }

    /// Number of block frames that fit in the buffer (`M/B` in blocks).
    pub fn buffer_blocks(&self) -> usize {
        self.buffer_bytes / self.block_size
    }

    /// Number of records of type `T` per block (`B` in records).
    pub fn records_per_block<T: Record>(&self) -> usize {
        (self.block_size / T::SIZE).max(1)
    }

    /// Number of records of type `T` that fit in the buffer (`M` in records).
    pub fn mem_records<T: Record>(&self) -> usize {
        self.buffer_bytes / T::SIZE
    }

    /// Number of blocks needed to store `n` records of type `T`.
    pub fn blocks_for<T: Record>(&self, n: u64) -> u64 {
        let per_block = self.records_per_block::<T>() as u64;
        n.div_ceil(per_block)
    }

    /// Merge / distribution fan-out `m = Θ(M/B)`: the number of input streams
    /// that can be processed simultaneously, leaving one block for the output
    /// buffer and one block of slack.
    pub fn fanout(&self) -> usize {
        self.buffer_blocks().saturating_sub(2).max(2)
    }
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig::paper_synthetic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct R16;
    impl Record for R16 {
        const SIZE: usize = 16;
        fn encode(&self, _buf: &mut [u8]) {}
        fn decode(_buf: &[u8]) -> Self {
            R16
        }
    }

    #[test]
    fn defaults_match_paper_table3() {
        let syn = EmConfig::paper_synthetic();
        assert_eq!(syn.block_size, 4096);
        assert_eq!(syn.buffer_bytes, 1024 * 1024);
        let real = EmConfig::paper_real();
        assert_eq!(real.buffer_bytes, 256 * 1024);
        assert_eq!(EmConfig::default(), syn);
    }

    #[test]
    fn derived_quantities() {
        let cfg = EmConfig::new(4096, 64 * 1024).unwrap();
        assert_eq!(cfg.buffer_blocks(), 16);
        assert_eq!(cfg.records_per_block::<R16>(), 256);
        assert_eq!(cfg.mem_records::<R16>(), 4096);
        assert_eq!(cfg.blocks_for::<R16>(0), 0);
        assert_eq!(cfg.blocks_for::<R16>(1), 1);
        assert_eq!(cfg.blocks_for::<R16>(256), 1);
        assert_eq!(cfg.blocks_for::<R16>(257), 2);
        assert_eq!(cfg.fanout(), 14);
    }

    #[test]
    fn validation() {
        assert!(EmConfig::new(0, 4096).is_err());
        assert!(EmConfig::new(4096, 4096).is_err());
        assert!(EmConfig::new(4096, 8192).is_ok());
    }

    #[test]
    fn backend_knob_round_trips() {
        let cfg = EmConfig::new(4096, 8192).unwrap();
        let fs = cfg.with_backend(StorageBackend::Fs);
        assert_eq!(fs.backend, StorageBackend::Fs);
        assert_eq!(fs.block_size, cfg.block_size);
        assert_eq!(fs.buffer_bytes, cfg.buffer_bytes);
        assert_eq!(StorageBackend::Sim.name(), "sim");
        assert_eq!(StorageBackend::Fs.name(), "fs");
        assert_eq!(StorageBackend::default(), StorageBackend::Sim);
    }

    #[test]
    fn fanout_never_below_two() {
        let cfg = EmConfig::new(4096, 8192).unwrap();
        assert_eq!(cfg.buffer_blocks(), 2);
        assert_eq!(cfg.fanout(), 2);
    }
}
