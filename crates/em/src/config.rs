//! EM model configuration: block size and buffer (main memory) size.


use crate::{EmError, Record, Result};

/// Configuration of the external-memory model.
///
/// Mirrors the knobs of the paper's Table 3: the disk *block size* (default
/// 4 KB) and the *buffer size* — the amount of main memory an algorithm may
/// use (default 256 KB for the real datasets and 1024 KB for the synthetic
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Size of one disk block in bytes.
    pub block_size: usize,
    /// Size of the main-memory buffer in bytes.
    pub buffer_bytes: usize,
}

impl EmConfig {
    /// Default block size used throughout the paper (4 KB).
    pub const DEFAULT_BLOCK_SIZE: usize = 4096;
    /// Default buffer size used for the synthetic experiments (1024 KB).
    pub const DEFAULT_BUFFER_BYTES: usize = 1024 * 1024;

    /// Creates a configuration, validating that the buffer holds at least two
    /// blocks (the EM model's `M ≥ 2B` assumption) and that the block size is
    /// positive.
    pub fn new(block_size: usize, buffer_bytes: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(EmError::InvalidConfig("block size must be positive".into()));
        }
        if buffer_bytes < 2 * block_size {
            return Err(EmError::InvalidConfig(format!(
                "buffer ({buffer_bytes} B) must hold at least two blocks of {block_size} B"
            )));
        }
        Ok(EmConfig {
            block_size,
            buffer_bytes,
        })
    }

    /// The paper's default configuration for synthetic datasets
    /// (4 KB blocks, 1024 KB buffer).
    pub fn paper_synthetic() -> Self {
        EmConfig {
            block_size: Self::DEFAULT_BLOCK_SIZE,
            buffer_bytes: Self::DEFAULT_BUFFER_BYTES,
        }
    }

    /// The paper's default configuration for real datasets
    /// (4 KB blocks, 256 KB buffer).
    pub fn paper_real() -> Self {
        EmConfig {
            block_size: Self::DEFAULT_BLOCK_SIZE,
            buffer_bytes: 256 * 1024,
        }
    }

    /// Number of block frames that fit in the buffer (`M/B` in blocks).
    pub fn buffer_blocks(&self) -> usize {
        self.buffer_bytes / self.block_size
    }

    /// Number of records of type `T` per block (`B` in records).
    pub fn records_per_block<T: Record>(&self) -> usize {
        (self.block_size / T::SIZE).max(1)
    }

    /// Number of records of type `T` that fit in the buffer (`M` in records).
    pub fn mem_records<T: Record>(&self) -> usize {
        self.buffer_bytes / T::SIZE
    }

    /// Number of blocks needed to store `n` records of type `T`.
    pub fn blocks_for<T: Record>(&self, n: u64) -> u64 {
        let per_block = self.records_per_block::<T>() as u64;
        n.div_ceil(per_block)
    }

    /// Merge / distribution fan-out `m = Θ(M/B)`: the number of input streams
    /// that can be processed simultaneously, leaving one block for the output
    /// buffer and one block of slack.
    pub fn fanout(&self) -> usize {
        self.buffer_blocks().saturating_sub(2).max(2)
    }
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig::paper_synthetic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct R16;
    impl Record for R16 {
        const SIZE: usize = 16;
        fn encode(&self, _buf: &mut [u8]) {}
        fn decode(_buf: &[u8]) -> Self {
            R16
        }
    }

    #[test]
    fn defaults_match_paper_table3() {
        let syn = EmConfig::paper_synthetic();
        assert_eq!(syn.block_size, 4096);
        assert_eq!(syn.buffer_bytes, 1024 * 1024);
        let real = EmConfig::paper_real();
        assert_eq!(real.buffer_bytes, 256 * 1024);
        assert_eq!(EmConfig::default(), syn);
    }

    #[test]
    fn derived_quantities() {
        let cfg = EmConfig::new(4096, 64 * 1024).unwrap();
        assert_eq!(cfg.buffer_blocks(), 16);
        assert_eq!(cfg.records_per_block::<R16>(), 256);
        assert_eq!(cfg.mem_records::<R16>(), 4096);
        assert_eq!(cfg.blocks_for::<R16>(0), 0);
        assert_eq!(cfg.blocks_for::<R16>(1), 1);
        assert_eq!(cfg.blocks_for::<R16>(256), 1);
        assert_eq!(cfg.blocks_for::<R16>(257), 2);
        assert_eq!(cfg.fanout(), 14);
    }

    #[test]
    fn validation() {
        assert!(EmConfig::new(0, 4096).is_err());
        assert!(EmConfig::new(4096, 4096).is_err());
        assert!(EmConfig::new(4096, 8192).is_ok());
    }

    #[test]
    fn fanout_never_below_two() {
        let cfg = EmConfig::new(4096, 8192).unwrap();
        assert_eq!(cfg.buffer_blocks(), 2);
        assert_eq!(cfg.fanout(), 2);
    }
}
