//! Error type of the EM layer.

use crate::FileId;

/// Errors raised by the external-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmError {
    /// The configuration is inconsistent (e.g. buffer smaller than two blocks).
    InvalidConfig(String),
    /// A file handle refers to a file that does not exist (already deleted).
    FileNotFound(FileId),
    /// A block index is past the end of the file.
    BlockOutOfRange {
        /// File being accessed.
        file: FileId,
        /// Requested block index.
        block: u64,
        /// Number of blocks the file actually has.
        len: u64,
    },
    /// A record type does not fit into a single block.
    RecordTooLarge {
        /// Size of the record in bytes.
        record_size: usize,
        /// Configured block size in bytes.
        block_size: usize,
    },
    /// The stored data is inconsistent with the file metadata.
    Corrupt(String),
    /// An operating-system I/O failure from a filesystem-backed device
    /// (the simulated backend never raises this).
    Io(String),
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::InvalidConfig(msg) => write!(f, "invalid EM configuration: {msg}"),
            EmError::FileNotFound(id) => write!(f, "file {id:?} not found"),
            EmError::BlockOutOfRange { file, block, len } => write!(
                f,
                "block {block} out of range for file {file:?} with {len} blocks"
            ),
            EmError::RecordTooLarge {
                record_size,
                block_size,
            } => write!(
                f,
                "record of {record_size} bytes does not fit into a {block_size}-byte block"
            ),
            EmError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            EmError::Io(msg) => write!(f, "I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for EmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmError::InvalidConfig("buffer too small".into());
        assert!(e.to_string().contains("buffer too small"));
        let e = EmError::BlockOutOfRange {
            file: FileId(7),
            block: 12,
            len: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("12") && msg.contains('3'));
        let e = EmError::RecordTooLarge {
            record_size: 8192,
            block_size: 4096,
        };
        assert!(e.to_string().contains("8192"));
    }
}
