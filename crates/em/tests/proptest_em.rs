//! Property-based tests of the external-memory substrate.

use maxrs_em::{external_sort, external_sort_by_key, EmConfig, EmContext, Record};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Row {
    key: u32,
    payload: u64,
}

impl Record for Row {
    const SIZE: usize = 12;
    fn encode(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.key.to_le_bytes());
        buf[4..12].copy_from_slice(&self.payload.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        Row {
            key: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            payload: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        }
    }
}

fn tiny_ctx(buffer_blocks: usize) -> EmContext {
    EmContext::new(EmConfig::new(64, 64 * buffer_blocks.max(2)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn files_roundtrip_exactly(values in prop::collection::vec(any::<u64>(), 0..600), buffer in 2usize..10) {
        let ctx = tiny_ctx(buffer);
        let file = ctx.write_all(&values).unwrap();
        prop_assert_eq!(file.len(), values.len() as u64);
        let back = ctx.read_all(&file).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn structured_records_roundtrip(rows in prop::collection::vec((any::<u32>(), any::<u64>()), 0..400)) {
        let ctx = tiny_ctx(4);
        let rows: Vec<Row> = rows.into_iter().map(|(key, payload)| Row { key, payload }).collect();
        let file = ctx.write_all(&rows).unwrap();
        let back = ctx.read_all(&file).unwrap();
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn external_sort_is_a_permutation_sort(
        rows in prop::collection::vec((any::<u32>(), any::<u64>()), 0..400),
        buffer in 2usize..8,
    ) {
        let ctx = tiny_ctx(buffer);
        let rows: Vec<Row> = rows.into_iter().map(|(key, payload)| Row { key, payload }).collect();
        let file = ctx.write_all(&rows).unwrap();
        let sorted = external_sort_by_key(&ctx, &file, |r| r.key).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        // Keys are non-decreasing.
        prop_assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
        // Same multiset of (key, payload) pairs.
        let mut a: Vec<(u32, u64)> = rows.iter().map(|r| (r.key, r.payload)).collect();
        let mut b: Vec<(u32, u64)> = out.iter().map(|r| (r.key, r.payload)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sort_with_custom_comparator_reverses(values in prop::collection::vec(any::<u32>(), 0..300)) {
        let ctx = tiny_ctx(4);
        let file = ctx.write_all(&values).unwrap();
        let sorted = external_sort(&ctx, &file, |a, b| b.cmp(a)).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        prop_assert!(out.windows(2).all(|w| w[0] >= w[1]));
        prop_assert_eq!(out.len(), values.len());
    }

    #[test]
    fn io_accounting_is_monotone_and_bounded(values in prop::collection::vec(any::<u64>(), 1..500), buffer in 2usize..6) {
        let ctx = tiny_ctx(buffer);
        let before = ctx.stats().total();
        let file = ctx.write_all(&values).unwrap();
        let mid = ctx.stats().total();
        let _ = ctx.read_all(&file).unwrap();
        let after = ctx.stats().total();
        prop_assert!(before <= mid && mid <= after);
        // A write + scan of n blocks through a bounded pool can never exceed
        // ~4 block transfers per data block (write-back + re-read + evictions).
        let blocks = ctx.config().blocks_for::<u64>(values.len() as u64);
        prop_assert!(after <= 4 * blocks + 4, "after = {after}, blocks = {blocks}");
    }

    #[test]
    fn delete_frees_disk_space(values in prop::collection::vec(any::<u64>(), 1..300)) {
        let ctx = tiny_ctx(3);
        let file = ctx.write_all(&values).unwrap();
        ctx.flush_all().unwrap();
        prop_assert!(ctx.disk_blocks() > 0);
        ctx.delete_file(file).unwrap();
        prop_assert_eq!(ctx.disk_blocks(), 0);
    }
}
