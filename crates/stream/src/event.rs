//! The event model: timestamped inserts, deletes and clock ticks.

use maxrs_geometry::WeightedPoint;

/// One record of a dynamic-data stream.
///
/// Every event carries a timestamp `at` in the stream's logical time unit.
/// The engine's clock is the running maximum of all seen timestamps, so an
/// out-of-order event is processed *at* the current clock rather than turning
/// time backwards (sliding-window expiry is monotone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A new object enters the dataset.
    Insert {
        /// Caller-chosen identifier, used by later deletes.  Reusing the id
        /// of a live object is an error; reusing the id of a deleted or
        /// expired object is fine.
        id: u64,
        /// The object itself (location + non-negative weight).
        object: WeightedPoint,
        /// Event timestamp.
        at: f64,
    },
    /// An object leaves the dataset.  Deleting an id that is not alive
    /// (never inserted, already deleted, or already expired by the sliding
    /// window) is a no-op, so window-agnostic producers can replay the same
    /// stream into windowed and unwindowed engines.
    Delete {
        /// Identifier of the object to remove.
        id: u64,
        /// Event timestamp.
        at: f64,
    },
    /// A pure clock advance: no object changes hands, but a sliding window
    /// may expire objects up to this timestamp.
    Tick {
        /// Event timestamp.
        at: f64,
    },
}

impl Event {
    /// Convenience constructor for an insert.
    pub fn insert(id: u64, x: f64, y: f64, weight: f64, at: f64) -> Self {
        Event::Insert {
            id,
            object: WeightedPoint::at(x, y, weight),
            at,
        }
    }

    /// Convenience constructor for a delete.
    pub fn delete(id: u64, at: f64) -> Self {
        Event::Delete { id, at }
    }

    /// Convenience constructor for a tick.
    pub fn tick(at: f64) -> Self {
        Event::Tick { at }
    }

    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match *self {
            Event::Insert { at, .. } | Event::Delete { at, .. } | Event::Tick { at } => at,
        }
    }

    /// A short human-readable name ("insert", "delete", "tick").
    pub fn name(&self) -> &'static str {
        match self {
            Event::Insert { .. } => "insert",
            Event::Delete { .. } => "delete",
            Event::Tick { .. } => "tick",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let e = Event::insert(3, 1.0, 2.0, 4.0, 10.0);
        assert_eq!(e.at(), 10.0);
        assert_eq!(e.name(), "insert");
        if let Event::Insert { id, object, .. } = e {
            assert_eq!(id, 3);
            assert_eq!(object.weight, 4.0);
        } else {
            panic!("not an insert");
        }
        assert_eq!(Event::delete(3, 11.0).name(), "delete");
        assert_eq!(Event::tick(12.0).at(), 12.0);
        assert_eq!(Event::tick(12.0).name(), "tick");
    }
}
