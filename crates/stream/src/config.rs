//! Configuration of a [`StreamEngine`](crate::StreamEngine).

use maxrs_core::Query;
use maxrs_geometry::RectSize;

use crate::error::{Result, StreamError};

/// Configuration of a streaming engine: the maintained query, the optional
/// sliding window and the grid-cell width of the maintenance structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The query whose answer the engine maintains.  Supported variants:
    /// [`Query::MaxRs`] and [`Query::TopK`]; MinRS and ApproxMaxCRS have no
    /// incremental maintenance path yet and are rejected at construction.
    pub query: Query,
    /// Sliding-window length in stream time units.  `Some(w)` auto-expires
    /// every object `w` time units after its insert timestamp; `None` keeps
    /// objects until they are explicitly deleted.
    pub window: Option<f64>,
    /// Width of the maintenance grid's x-cells.  Defaults to the query
    /// rectangle's width, so each transformed rectangle intersects at most
    /// two cells and every event dirties O(1) cells.
    pub cell_width: Option<f64>,
}

impl StreamConfig {
    /// A MaxRS maintenance configuration with no window.
    pub fn max_rs(size: RectSize) -> Self {
        StreamConfig {
            query: Query::max_rs(size),
            window: None,
            cell_width: None,
        }
    }

    /// A top-k (MaxkRS) maintenance configuration with no window.
    pub fn top_k(size: RectSize, k: usize) -> Self {
        StreamConfig {
            query: Query::top_k(size, k),
            window: None,
            cell_width: None,
        }
    }

    /// Sets the sliding-window length (stream time units; must be positive).
    pub fn with_window(self, window: f64) -> Self {
        StreamConfig {
            window: Some(window),
            ..self
        }
    }

    /// Overrides the maintenance grid's cell width.
    pub fn with_cell_width(self, cell_width: f64) -> Self {
        StreamConfig {
            cell_width: Some(cell_width),
            ..self
        }
    }

    /// The query rectangle extent of the maintained query.
    pub fn size(&self) -> RectSize {
        match self.query {
            Query::MaxRs { size } | Query::TopK { size, .. } => size,
            // Unreachable after `validate`, but total for robustness.
            Query::MinRs { size, .. } => size,
            Query::ApproxMaxCrs { diameter, .. } => RectSize::square(diameter),
        }
    }

    /// The effective grid-cell width ([`cell_width`](StreamConfig::cell_width)
    /// or the query rectangle's width).
    pub fn effective_cell_width(&self) -> f64 {
        self.cell_width.unwrap_or_else(|| self.size().width)
    }

    /// Checks the configuration, mirroring [`Query::validate`] plus the
    /// stream-specific constraints.
    pub fn validate(&self) -> Result<()> {
        self.query.validate().map_err(StreamError::from)?;
        match self.query {
            Query::MaxRs { .. } | Query::TopK { .. } => {}
            Query::MinRs { .. } | Query::ApproxMaxCrs { .. } => {
                return Err(StreamError::Unsupported(format!(
                    "{} has no incremental maintenance path (supported: max-rs, top-k)",
                    self.query.name()
                )));
            }
        }
        if let Some(w) = self.window {
            if !(w > 0.0 && w.is_finite()) {
                return Err(StreamError::InvalidParameter(format!(
                    "sliding window must be positive and finite, got {w}"
                )));
            }
        }
        if let Some(cw) = self.cell_width {
            if !(cw > 0.0 && cw.is_finite()) {
                return Err(StreamError::InvalidParameter(format!(
                    "cell width must be positive and finite, got {cw}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_geometry::Rect;

    #[test]
    fn supported_queries_validate() {
        assert!(StreamConfig::max_rs(RectSize::square(2.0))
            .validate()
            .is_ok());
        assert!(StreamConfig::top_k(RectSize::square(2.0), 3)
            .validate()
            .is_ok());
        assert!(StreamConfig::max_rs(RectSize::square(2.0))
            .with_window(10.0)
            .with_cell_width(4.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn unsupported_and_invalid_configs_are_rejected() {
        let min_rs = StreamConfig {
            query: Query::min_rs(RectSize::square(1.0), Rect::new(0.0, 1.0, 0.0, 1.0)),
            window: None,
            cell_width: None,
        };
        assert!(matches!(
            min_rs.validate(),
            Err(StreamError::Unsupported(_))
        ));
        let crs = StreamConfig {
            query: Query::approx_max_crs(2.0),
            window: None,
            cell_width: None,
        };
        assert!(matches!(crs.validate(), Err(StreamError::Unsupported(_))));
        // Invalid underlying query parameters surface as core errors.
        let bad = StreamConfig::max_rs(RectSize {
            width: -1.0,
            height: 1.0,
        });
        assert!(matches!(bad.validate(), Err(StreamError::Core(_))));
        // Stream-specific knobs.
        let bad_window = StreamConfig::max_rs(RectSize::square(1.0)).with_window(0.0);
        assert!(matches!(
            bad_window.validate(),
            Err(StreamError::InvalidParameter(_))
        ));
        let bad_cell = StreamConfig::max_rs(RectSize::square(1.0)).with_cell_width(f64::NAN);
        assert!(matches!(
            bad_cell.validate(),
            Err(StreamError::InvalidParameter(_))
        ));
    }

    #[test]
    fn effective_cell_width_defaults_to_query_width() {
        let cfg = StreamConfig::max_rs(RectSize::new(3.0, 7.0));
        assert_eq!(cfg.effective_cell_width(), 3.0);
        assert_eq!(cfg.with_cell_width(5.0).effective_cell_width(), 5.0);
        assert_eq!(cfg.size(), RectSize::new(3.0, 7.0));
    }
}
