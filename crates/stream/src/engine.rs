//! [`StreamEngine`]: incremental MaxRS / top-k maintenance over an event
//! stream.
//!
//! # Mechanism
//!
//! The x-axis is partitioned into uniform grid columns (cells) of width
//! [`StreamConfig::effective_cell_width`], keyed by the same
//! [`maxrs_core::grid_cell`] convention as the core grid.  Every
//! live object is routed to the cells its transformed rectangle overlaps with
//! positive width — at most two cells under the default width, so an event
//! dirties `O(1)` cells.  Each cell caches the result of running the
//! *existing* plane-sweep / segment-tree machinery
//! ([`maxrs_core::plane_sweep_slab`]) over its members,
//! clipped to the cell's x-interval: the cell's maximum location-weight, the
//! first sweep `y` attaining it and the winning elementary x-interval.
//!
//! [`StreamEngine::answer`] runs a **branch-and-bound maintenance loop**
//! instead of a global recompute: clean cells contribute their cached
//! candidates; dirty cells are visited in decreasing order of their upper
//! bound (the total member weight) and re-swept only while that bound can
//! still beat the incumbent.  Once the incumbent exceeds every remaining
//! bound, the rest of the dirty set is pruned — those cells stay dirty and
//! are reconsidered (cheaply, via their bound) at the next answer.
//!
//! # Exactness
//!
//! The winning cell candidate is *canonicalized* exactly like the external
//! pipeline's answers (see `maxrs_core::exact`, "Canonical max-regions"): the
//! x-interval is widened to the full arrangement cell via a successor query
//! on the global multiset of rectangle x-edges, and the y-strip extends to
//! the next event y.  The result is bit-identical to a from-scratch
//! [`MaxRsEngine::run`](maxrs_core::MaxRsEngine::run) over the surviving
//! objects — the property the `stream_incremental` proptest suite replays
//! ≥10k-event sequences to enforce.  (As everywhere in this workspace, the
//! bit-for-bit guarantee assumes weights whose partial sums are exactly
//! representable — integers in particular; arbitrary floats carry the usual
//! association caveat of the parallel MergeSweep.)

use std::collections::HashMap;

use maxrs_core::{
    grid_cell, max_rs_in_memory, Event, EventOutcome, ExecutionStrategy, FrontierMap, LiveSet,
    MaxRsResult, Query, QueryAnswer, QueryRun, RectRecord, SweepScratch,
};
use maxrs_em::IoSnapshot;
use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::cells::{Cell, CellCandidate, FloatMultiset};
use crate::config::StreamConfig;
use crate::error::{Result, StreamError};

/// The maintenance-structure bookkeeping of one live object — everything the
/// engine needs to detach it again.  Liveness itself (ids, the clock, window
/// expiry) lives in the shared [`LiveSet`], so the stream engine and
/// `maxrs_core::DeltaDataset` apply events under one canonical semantics.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    /// The (normalized) weight, denormalized here so cell re-sweeps need no
    /// second lookup.
    weight: f64,
    /// The transformed rectangle (`r_o` for the configured query size).
    rect: Rect,
    /// Grid columns the rectangle overlaps with positive width.
    col_lo: i64,
    col_hi: i64,
}

/// Work accounting of one [`StreamEngine::answer`] call — the evidence that
/// maintenance is localized: `cells_swept` stays near the number of cells
/// touched by events, not near `cells_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceStats {
    /// Non-empty grid cells.
    pub cells_total: usize,
    /// Clean cells whose cached candidate was reused.
    pub cells_cached: usize,
    /// Dirty cells re-swept by the plane sweep.
    pub cells_swept: usize,
    /// Dirty cells skipped because their upper bound could not beat the
    /// incumbent (they stay dirty).
    pub cells_pruned: usize,
    /// Live objects at answer time.
    pub live_objects: usize,
    /// Events applied since the previous answer.
    pub events_since_last_answer: u64,
}

/// The outcome of one [`StreamEngine::answer`]: the same [`QueryRun`] shape
/// [`MaxRsEngine::run`](maxrs_core::MaxRsEngine::run) reports, plus the
/// maintenance-work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAnswer {
    /// The answer in the engine's query-run shape (strategy
    /// [`ExecutionStrategy::InMemory`], zero I/O — maintenance is an
    /// in-memory structure).
    pub run: QueryRun,
    /// How much sweep work the incremental maintenance actually did.
    pub stats: MaintenanceStats,
}

/// Incremental MaxRS / top-k over a stream of timestamped
/// [`Event`]s, with an optional sliding window.
///
/// ```
/// use maxrs_stream::{Event, StreamConfig, StreamEngine};
/// use maxrs_geometry::RectSize;
///
/// // Maintain the best 2 × 2 placement over a 10-unit sliding window.
/// let mut engine =
///     StreamEngine::new(StreamConfig::max_rs(RectSize::square(2.0)).with_window(10.0)).unwrap();
///
/// engine.apply(&Event::insert(1, 1.0, 1.0, 1.0, 0.0)).unwrap();
/// engine.apply(&Event::insert(2, 1.5, 1.2, 1.0, 1.0)).unwrap();
/// engine.apply(&Event::insert(3, 9.0, 9.0, 1.0, 2.0)).unwrap();
/// assert_eq!(engine.answer().run.answer.best_weight(), 2.0);
///
/// // At t = 11.5 the pair from t ≤ 1 has expired; the loner remains.
/// engine.apply(&Event::tick(11.5)).unwrap();
/// assert_eq!(engine.len(), 1);
/// assert_eq!(engine.answer().run.answer.best_weight(), 1.0);
/// ```
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    size: RectSize,
    cell_width: f64,
    /// The canonical event semantics (ids, clock, window expiry) shared with
    /// `maxrs_core::DeltaDataset`.
    live: LiveSet,
    /// Per-object maintenance geometry, keyed by id.
    geometry: HashMap<u64, Geometry>,
    /// Non-empty maintenance cells by column index, in a locality-aware
    /// [`FrontierMap`]: events touch at most two *adjacent* columns, so
    /// nearly every probe hits the map's last-accessed leaf.
    cells: FrontierMap<i64, Cell>,
    /// Columns that are currently dirty — the only cells an answer may need
    /// to re-sweep, kept explicitly so answering never scans the whole grid.
    dirty_cols: FrontierMap<i64, ()>,
    /// Candidate index of the *clean* cells, ordered by
    /// [`candidate_key`](crate::cells) (sum desc, y asc, column asc): the
    /// first entry is the best clean candidate, maintained incrementally on
    /// dirty/clean transitions so answers do not visit clean cells at all.
    clean_best: FrontierMap<(u64, u64, i64), ()>,
    /// Multiset of every live rectangle's x-edges (arrangement breakpoints).
    x_edges: FloatMultiset,
    /// Multiset of every live rectangle's sweep event y's.
    y_events: FloatMultiset,
    /// Reusable plane-sweep buffers (breakpoints, events, segment tree) —
    /// cell re-sweeps allocate nothing once these reach their high-water
    /// mark.
    scratch: SweepScratch,
    /// Reusable buffer for the rectangles handed to a cell re-sweep.
    rect_buf: Vec<RectRecord>,
    /// Live objects with strictly positive weight.
    positive_weight: usize,
    events_since_answer: u64,
}

impl StreamEngine {
    /// Creates an engine maintaining `config.query`; rejects unsupported
    /// variants and invalid parameters (see [`StreamConfig::validate`]).
    pub fn new(config: StreamConfig) -> Result<Self> {
        config.validate()?;
        Ok(StreamEngine {
            size: config.size(),
            cell_width: config.effective_cell_width(),
            live: LiveSet::new(config.window).map_err(StreamError::from)?,
            config,
            geometry: HashMap::new(),
            cells: FrontierMap::new(),
            dirty_cols: FrontierMap::new(),
            clean_best: FrontierMap::new(),
            x_edges: FloatMultiset::default(),
            y_events: FloatMultiset::default(),
            scratch: SweepScratch::new(),
            rect_buf: Vec::new(),
            positive_weight: 0,
            events_since_answer: 0,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of live (inserted, not deleted, not expired) objects.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no object is alive.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The stream clock (`-∞` before the first event).
    pub fn now(&self) -> f64 {
        self.live.now()
    }

    /// `true` when `id` refers to a live object.
    pub fn contains(&self, id: u64) -> bool {
        self.live.contains(id)
    }

    /// The live objects in insertion order — exactly the slice a batch
    /// engine would be given to answer the same question.
    pub fn survivors(&self) -> Vec<WeightedPoint> {
        self.live.survivors()
    }

    /// Applies one event: advances the clock (expiring windowed objects),
    /// then performs the insert / delete.
    ///
    /// Errors leave the engine unchanged except for the clock advance (and
    /// any expirations it triggered): a duplicate insert id is
    /// [`StreamError::DuplicateId`], non-finite coordinates / timestamps and
    /// negative weights are [`StreamError::InvalidParameter`].  Deleting an
    /// id that is not alive is a no-op reported through
    /// [`EventOutcome::applied`].
    pub fn apply(&mut self, event: &Event) -> Result<EventOutcome> {
        // The shared `LiveSet` owns the canonical semantics: finite-timestamp
        // check before the clock moves, monotone clock, window expiry,
        // validation, duplicate-id check, `-0.0` weight normalization (so
        // candidate sums have one bit pattern per value — the clean-candidate
        // index orders by raw sum bits).
        let expired_records = self.live.advance(event.at()).map_err(StreamError::from)?;
        let expired = expired_records.len();
        for gone in &expired_records {
            self.detach(gone.id);
        }
        let applied = match *event {
            Event::Insert { id, object, .. } => {
                let object = self
                    .live
                    .check_insert(id, object)
                    .map_err(StreamError::from)?;
                let rect = object.to_rect(self.size);
                let (col_lo, col_hi) = self.column_range(&rect);
                // Columns at the saturation bound of `grid_cell` have lost
                // the exact-containment invariant the maintenance relies
                // on: reject instead of silently mis-binning.  This check is
                // stream-specific, interposed between check and commit so
                // rejected inserts leave the live set untouched.
                let limit = maxrs_core::GRID_CELL_LIMIT - 1;
                if col_lo <= -limit || col_hi >= limit {
                    return Err(StreamError::InvalidParameter(format!(
                        "object x {} is out of range for cell width {} \
                         (grid index would exceed ±2^52)",
                        object.point.x, self.cell_width
                    )));
                }
                self.live.commit_insert(id, object);
                self.attach(id, object, rect, col_lo, col_hi);
                true
            }
            Event::Delete { id, .. } => match self.live.remove(id) {
                Some(_) => {
                    self.detach(id);
                    true
                }
                None => false,
            },
            Event::Tick { .. } => true,
        };
        self.events_since_answer += 1;
        Ok(EventOutcome { applied, expired })
    }

    /// Applies a batch of events, accumulating the outcome counts.  Stops at
    /// the first error (events before it are applied).
    pub fn apply_all(&mut self, events: &[Event]) -> Result<EventOutcome> {
        let mut total = EventOutcome {
            applied: true,
            ..Default::default()
        };
        for event in events {
            let outcome = self.apply(event)?;
            total.applied &= outcome.applied;
            total.expired += outcome.expired;
        }
        Ok(total)
    }

    /// The current answer to the configured query, maintained incrementally.
    ///
    /// Returns the same [`QueryRun`] types as
    /// [`MaxRsEngine::run`](maxrs_core::MaxRsEngine::run) — and, bit for bit,
    /// the same *values* a from-scratch run over
    /// [`survivors`](StreamEngine::survivors) would return — plus the
    /// maintenance-work statistics of this call.
    pub fn answer(&mut self) -> StreamAnswer {
        let (max_rs, stats) = self.maintain_max_rs();
        let answer = match self.config.query {
            Query::MaxRs { .. } => QueryAnswer::MaxRs(max_rs),
            Query::TopK { k, .. } => QueryAnswer::TopK(self.top_k_from(max_rs, k)),
            // Rejected by `StreamConfig::validate` at construction.
            Query::MinRs { .. } | Query::ApproxMaxCrs { .. } => {
                unreachable!("unsupported variants are rejected at construction")
            }
        };
        self.events_since_answer = 0;
        StreamAnswer {
            run: QueryRun {
                answer,
                strategy: ExecutionStrategy::InMemory,
                workers: 1,
                io: IoSnapshot::default(),
            },
            stats,
        }
    }

    // ---- event application ------------------------------------------------

    /// The grid columns `rect` overlaps with positive width.  Touching a
    /// column boundary only (zero-width overlap) does not count: such a part
    /// contributes no location-weight, exactly as a zero-width clip
    /// contributes nothing to [`plane_sweep_slab`].
    fn column_range(&self, rect: &Rect) -> (i64, i64) {
        let cw = self.cell_width;
        let lo = grid_cell(rect.x_lo, cw);
        let mut hi = grid_cell(rect.x_hi, cw);
        if rect.x_hi == hi as f64 * cw {
            hi -= 1;
        }
        (lo, hi.max(lo))
    }

    /// Marks one cell dirty, maintaining the dirty set and evicting its
    /// (now stale) entry from the clean-candidate index.
    fn mark_cell_dirty(
        clean_best: &mut FrontierMap<(u64, u64, i64), ()>,
        dirty_cols: &mut FrontierMap<i64, ()>,
        col: i64,
        cell: &mut Cell,
    ) {
        if !cell.dirty {
            cell.dirty = true;
            dirty_cols.insert(col, ());
            if let Some(c) = cell.cached.take() {
                clean_best.remove(&crate::cells::candidate_key(&c, col));
            }
        }
        cell.cached = None;
    }

    /// Routes a just-committed object into the maintenance structures.
    fn attach(&mut self, id: u64, object: WeightedPoint, rect: Rect, col_lo: i64, col_hi: i64) {
        for col in col_lo..=col_hi {
            let cell = self.cells.get_or_insert_with(col, Cell::default);
            Self::mark_cell_dirty(&mut self.clean_best, &mut self.dirty_cols, col, cell);
            cell.ids.insert(id);
            cell.bound += object.weight;
        }
        self.x_edges.insert(rect.x_lo);
        self.x_edges.insert(rect.x_hi);
        self.y_events.insert(rect.y_lo);
        self.y_events.insert(rect.y_hi);
        if object.weight > 0.0 {
            self.positive_weight += 1;
        }
        self.geometry.insert(
            id,
            Geometry {
                weight: object.weight,
                rect,
                col_lo,
                col_hi,
            },
        );
    }

    /// Undoes [`attach`](StreamEngine::attach) for an object the [`LiveSet`]
    /// already removed (explicit delete or window expiry).
    fn detach(&mut self, id: u64) {
        let Some(geom) = self.geometry.remove(&id) else {
            debug_assert!(false, "removed object had no maintenance geometry");
            return;
        };
        for col in geom.col_lo..=geom.col_hi {
            let now_empty = if let Some(cell) = self.cells.get_mut(&col) {
                Self::mark_cell_dirty(&mut self.clean_best, &mut self.dirty_cols, col, cell);
                cell.ids.remove(&id);
                // `cell.bound` deliberately keeps the removed weight: a
                // stale bound is still an upper bound (see `Cell::bound`);
                // the next re-sweep of the cell tightens it again.
                cell.ids.is_empty()
            } else {
                debug_assert!(false, "live object referenced a missing cell");
                false
            };
            if now_empty {
                self.cells.remove(&col);
                self.dirty_cols.remove(&col);
            }
        }
        self.x_edges.remove(geom.rect.x_lo);
        self.x_edges.remove(geom.rect.x_hi);
        self.y_events.remove(geom.rect.y_lo);
        self.y_events.remove(geom.rect.y_hi);
        if geom.weight > 0.0 {
            self.positive_weight -= 1;
        }
    }

    // ---- incremental answering -------------------------------------------

    /// Is candidate `(c, col)` better than the incumbent under the sweep's
    /// tie-breaking (higher sum, then lower first-attain y, then leftmost
    /// cell)?  This is exactly the order in which the external MergeSweep
    /// would surface the same winner.
    fn consider(best: &mut Option<(CellCandidate, i64)>, c: CellCandidate, col: i64) {
        let better = match best {
            None => true,
            Some((b, bcol)) => {
                c.sum > b.sum || (c.sum == b.sum && (c.y < b.y || (c.y == b.y && col < *bcol)))
            }
        };
        if better {
            *best = Some((c, col));
        }
    }

    /// Re-sweeps one dirty cell with the core plane sweep, caches and
    /// returns its candidate; also refreshes the cell's weight bound to the
    /// exact member total.
    fn sweep_cell(&mut self, col: i64) -> Option<CellCandidate> {
        let interval = Interval::new(
            col as f64 * self.cell_width,
            (col + 1) as f64 * self.cell_width,
        );
        self.rect_buf.clear();
        let members = &self.cells.get(&col).expect("swept cell exists").ids;
        self.rect_buf.extend(members.iter().map(|id| {
            let g = &self.geometry[id];
            RectRecord::new(g.rect, g.weight)
        }));
        let bound = self.rect_buf.iter().map(|r| r.weight).sum();
        let tuples = self.scratch.sweep(&self.rect_buf, interval);
        let mut cand: Option<CellCandidate> = None;
        for t in tuples {
            // First strictly-greater tuple: the same selection rule as the
            // final extraction of the batch pipelines.
            if cand.as_ref().is_none_or(|c| t.sum > c.sum) {
                cand = Some(CellCandidate {
                    sum: t.sum,
                    y: t.y,
                    x: t.interval(),
                });
            }
        }
        let cell = self.cells.get_mut(&col).expect("swept cell exists");
        cell.cached = cand;
        cell.dirty = false;
        cell.bound = bound;
        self.dirty_cols.remove(&col);
        if let Some(c) = &cand {
            self.clean_best
                .insert(crate::cells::candidate_key(c, col), ());
        }
        cand
    }

    /// The branch-and-bound maintenance loop: merge clean candidates, then
    /// re-sweep dirty cells in decreasing bound order while they can still
    /// beat the incumbent.
    fn maintain_max_rs(&mut self) -> (MaxRsResult, MaintenanceStats) {
        let mut stats = MaintenanceStats {
            cells_total: self.cells.len(),
            live_objects: self.live.len(),
            events_since_last_answer: self.events_since_answer,
            ..Default::default()
        };
        if self.live.is_empty() {
            return (MaxRsResult::empty(), stats);
        }
        if self.positive_weight == 0 {
            // All weights are zero: the batch sweep reports weight 0 on the
            // leftmost elementary cell of the arrangement at the first event
            // y, reproduced here from the global breakpoint indexes.  No
            // sweep runs, so account every cell as cached (clean) or pruned
            // (dirty, left dirty) to keep the cached+swept+pruned ==
            // cells_total invariant of the stats.
            stats.cells_pruned = self.dirty_cols.len();
            stats.cells_cached = stats.cells_total - stats.cells_pruned;
            return (self.zero_weight_answer(), stats);
        }

        // Best clean candidate straight from the incremental index — O(1),
        // no scan of the clean cells.
        stats.cells_cached = stats.cells_total - self.dirty_cols.len();
        let mut best: Option<(CellCandidate, i64)> =
            self.clean_best.first_key_value().map(|(&(_, _, col), ())| {
                let c = self
                    .cells
                    .get(&col)
                    .expect("clean-best column exists")
                    .cached
                    .expect("clean-best entries always have a cached candidate");
                (c, col)
            });
        let mut dirty: Vec<(f64, i64)> = self
            .dirty_cols
            .keys()
            .map(|&col| {
                (
                    self.cells.get(&col).expect("dirty column exists").bound,
                    col,
                )
            })
            .collect();
        dirty.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (i, &(bound, col)) in dirty.iter().enumerate() {
            if let Some((incumbent, _)) = &best {
                if bound < incumbent.sum {
                    // Sorted by bound: nothing after this can win either.
                    stats.cells_pruned += dirty.len() - i;
                    break;
                }
            }
            let cand = self.sweep_cell(col);
            stats.cells_swept += 1;
            if let Some(c) = cand {
                Self::consider(&mut best, c, col);
            }
        }
        let (winner, _) = best.expect("a positive-weight stream has a winning cell");
        (self.canonicalize(winner), stats)
    }

    /// Widens the winning cell candidate to the full arrangement cell — the
    /// in-memory analogue of the external pipeline's canonical max-regions —
    /// so the reported result is bit-identical to a batch
    /// [`max_rs_in_memory`] over the survivors.
    fn canonicalize(&self, c: CellCandidate) -> MaxRsResult {
        let y_lo = c.y;
        let y_hi = self.y_events.successor_after(y_lo).unwrap_or(y_lo + 1.0);
        let x_lo = c.x.lo;
        let x_hi = self.x_edges.successor_after(x_lo).unwrap_or(f64::INFINITY);
        debug_assert!(
            x_hi >= c.x.hi,
            "widened interval must contain the cell-clipped winner"
        );
        let x = Interval::new(x_lo, x_hi);
        MaxRsResult {
            center: Point::new(x.representative(), (y_lo + y_hi) / 2.0),
            total_weight: c.sum,
            region: Rect::new(x.lo, x.hi, y_lo, y_hi),
        }
    }

    /// The answer when every live object has weight zero: maximum 0 on the
    /// leftmost arrangement cell `(-∞, min x-edge)` at the first event y —
    /// exactly what the batch sweep's leftmost-tie-breaking reports.
    fn zero_weight_answer(&self) -> MaxRsResult {
        let y_lo = self.y_events.min().expect("non-empty stream has events");
        let y_hi = self.y_events.successor_after(y_lo).unwrap_or(y_lo + 1.0);
        let e_min = self.x_edges.min().expect("non-empty stream has edges");
        let x = Interval::new(f64::NEG_INFINITY, e_min);
        MaxRsResult {
            center: Point::new(x.representative(), (y_lo + y_hi) / 2.0),
            total_weight: 0.0,
            region: Rect::new(x.lo, x.hi, y_lo, y_hi),
        }
    }

    /// Top-k via greedy suppression, mirroring
    /// [`max_k_rs_in_memory`](maxrs_core::max_k_rs_in_memory) round for
    /// round: round 1 comes from the incremental structure (bit-identical to
    /// a fresh sweep by the maintenance invariant), later rounds re-sweep the
    /// suppressed remainder in memory.
    fn top_k_from(&self, first: MaxRsResult, k: usize) -> Vec<MaxRsResult> {
        if k == 0 {
            return Vec::new();
        }
        if k == 1 {
            // Round 1 alone needs no survivor copy: the incremental result
            // already is the greedy's first placement (an empty stream
            // reports weight 0 and yields the same empty list the batch
            // greedy produces).
            return if first.total_weight <= 0.0 {
                Vec::new()
            } else {
                vec![first]
            };
        }
        let mut remaining = self.survivors();
        let mut results = Vec::with_capacity(k.min(remaining.len()));
        for round in 0..k {
            if remaining.is_empty() {
                break;
            }
            let best = if round == 0 {
                first
            } else {
                max_rs_in_memory(&remaining, self.size)
            };
            if best.total_weight <= 0.0 {
                break;
            }
            let chosen = Rect::centered_at(best.center, self.size);
            remaining.retain(|o| !chosen.contains_open(&o.point));
            results.push(best);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::{max_k_rs_in_memory, MaxRsEngine};

    fn size() -> RectSize {
        RectSize::square(10.0)
    }

    /// Deterministic pseudo-random event mix (inserts + deletes).
    fn scripted_events(n: usize, seed: u64) -> Vec<Event> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut events = Vec::with_capacity(n);
        let mut live: Vec<u64> = Vec::new();
        for i in 0..n {
            let at = i as f64;
            let r = next();
            if !live.is_empty() && r % 4 == 0 {
                let victim = live.swap_remove((next() % live.len() as u64) as usize);
                events.push(Event::delete(victim, at));
            } else {
                let id = i as u64;
                let x = (next() % 1000) as f64 / 5.0;
                let y = (next() % 1000) as f64 / 5.0;
                let w = (next() % 4) as f64; // integer weights 0..=3, zeros included
                events.push(Event::insert(id, x, y, w, at));
                live.push(id);
            }
        }
        events
    }

    fn assert_matches_batch(engine: &mut StreamEngine, query: &Query) {
        let survivors = engine.survivors();
        let incremental = engine.answer();
        let batch = MaxRsEngine::new().run(&survivors, query).unwrap();
        assert_eq!(
            incremental.run.answer,
            batch.answer,
            "incremental answer diverged from batch on {} survivors",
            survivors.len()
        );
    }

    #[test]
    fn empty_engine_answers_like_batch() {
        let query = Query::max_rs(size());
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        assert!(engine.is_empty());
        assert_matches_batch(&mut engine, &query);
    }

    #[test]
    fn scripted_sequence_matches_batch_at_every_checkpoint() {
        let query = Query::max_rs(size());
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        for (i, event) in scripted_events(600, 42).iter().enumerate() {
            engine.apply(event).unwrap();
            if i % 37 == 0 {
                assert_matches_batch(&mut engine, &query);
            }
        }
        assert_matches_batch(&mut engine, &query);
    }

    #[test]
    fn top_k_matches_greedy_reference() {
        let k = 3;
        let mut engine = StreamEngine::new(StreamConfig::top_k(size(), k)).unwrap();
        for event in scripted_events(400, 7) {
            engine.apply(&event).unwrap();
        }
        let survivors = engine.survivors();
        let got = engine.answer();
        let want = max_k_rs_in_memory(&survivors, size(), k);
        assert_eq!(got.run.answer.placements().unwrap(), want.as_slice());
    }

    #[test]
    fn zero_weight_only_stream_matches_batch() {
        let query = Query::max_rs(size());
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        for (i, &(x, y)) in [(5.0, 5.0), (20.0, 1.0), (3.0, 40.0)].iter().enumerate() {
            engine
                .apply(&Event::insert(i as u64, x, y, 0.0, i as f64))
                .unwrap();
        }
        assert_matches_batch(&mut engine, &query);
        // The stats accounting holds on the no-sweep early path too.
        let answer = engine.answer();
        assert_eq!(
            answer.stats.cells_cached + answer.stats.cells_swept + answer.stats.cells_pruned,
            answer.stats.cells_total
        );
        assert_eq!(answer.stats.cells_swept, 0);
        assert!(answer.stats.cells_total > 0);
    }

    #[test]
    fn sliding_window_expires_objects() {
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size()).with_window(5.0)).unwrap();
        engine.apply(&Event::insert(1, 0.0, 0.0, 1.0, 0.0)).unwrap();
        engine.apply(&Event::insert(2, 1.0, 1.0, 1.0, 3.0)).unwrap();
        assert_eq!(engine.len(), 2);
        // t = 5: the first object's lifetime [0, 5) is over, the second lives.
        let outcome = engine.apply(&Event::tick(5.0)).unwrap();
        assert_eq!(outcome.expired, 1);
        assert_eq!(engine.len(), 1);
        assert!(engine.contains(2) && !engine.contains(1));
        // Expired ids can be reused.
        engine.apply(&Event::insert(1, 2.0, 2.0, 1.0, 6.0)).unwrap();
        assert_eq!(engine.len(), 2);
        // The answer tracks the surviving set.
        let survivors = engine.survivors();
        let batch = MaxRsEngine::new()
            .run(&survivors, &Query::max_rs(size()))
            .unwrap();
        assert_eq!(engine.answer().run.answer, batch.answer);
    }

    #[test]
    fn duplicate_insert_is_an_error_and_unknown_delete_a_noop() {
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        engine.apply(&Event::insert(1, 0.0, 0.0, 1.0, 0.0)).unwrap();
        assert_eq!(
            engine.apply(&Event::insert(1, 5.0, 5.0, 1.0, 1.0)),
            Err(StreamError::DuplicateId(1))
        );
        let outcome = engine.apply(&Event::delete(99, 2.0)).unwrap();
        assert!(!outcome.applied);
        assert_eq!(engine.len(), 1);
        // Invalid payloads are checked errors.
        assert!(engine
            .apply(&Event::insert(2, f64::NAN, 0.0, 1.0, 3.0))
            .is_err());
        // A negative weight never gets past the checked validation (the
        // event is built literally: `WeightedPoint::at` debug-asserts).
        let negative = Event::Insert {
            id: 2,
            object: WeightedPoint {
                point: Point::new(0.0, 0.0),
                weight: -1.0,
            },
            at: 3.0,
        };
        assert!(engine.apply(&negative).is_err());
        assert!(engine.apply(&Event::tick(f64::INFINITY)).is_err());
    }

    #[test]
    fn out_of_range_coordinates_are_a_checked_error_not_a_hang() {
        // |x / cell_width| beyond the grid_cell exactness bound must be
        // rejected (this used to overflow/loop inside grid_cell).
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        assert!(matches!(
            engine.apply(&Event::insert(1, 1e30, 0.0, 1.0, 0.0)),
            Err(StreamError::InvalidParameter(_))
        ));
        assert!(engine.is_empty(), "rejected insert must not be applied");
        // The same guard triggers through a tiny cell width at ordinary
        // coordinates.
        let mut narrow =
            StreamEngine::new(StreamConfig::max_rs(size()).with_cell_width(1e-300)).unwrap();
        assert!(matches!(
            narrow.apply(&Event::insert(1, 1.0, 1.0, 1.0, 0.0)),
            Err(StreamError::InvalidParameter(_))
        ));
        // In-range inserts still work on both engines.
        engine.apply(&Event::insert(2, 5.0, 5.0, 1.0, 1.0)).unwrap();
        assert_eq!(engine.answer().run.answer.best_weight(), 1.0);
    }

    #[test]
    fn quiescent_answers_do_no_sweep_work() {
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        for event in scripted_events(300, 13) {
            engine.apply(&event).unwrap();
        }
        let first = engine.answer();
        assert!(first.stats.cells_swept > 0);
        // No events in between: the next answer sweeps nothing — clean
        // cells are served by the candidate index, and cells pruned by the
        // first answer stay dirty but cost only an O(1) bound check each.
        let second = engine.answer();
        assert_eq!(second.run.answer, first.run.answer);
        assert_eq!(second.stats.cells_swept, 0);
        assert_eq!(
            second.stats.cells_cached + second.stats.cells_pruned,
            second.stats.cells_total
        );
        assert_eq!(second.stats.events_since_last_answer, 0);
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size()).with_window(5.0)).unwrap();
        engine
            .apply(&Event::insert(1, 0.0, 0.0, 1.0, 10.0))
            .unwrap();
        assert_eq!(engine.now(), 10.0);
        // An out-of-order event is processed at the current clock.
        engine.apply(&Event::insert(2, 1.0, 1.0, 1.0, 4.0)).unwrap();
        assert_eq!(engine.now(), 10.0);
        // Both live until 15 (id 2's window starts at the clamped clock).
        engine.apply(&Event::tick(14.9)).unwrap();
        assert_eq!(engine.len(), 2);
        engine.apply(&Event::tick(15.0)).unwrap();
        assert_eq!(engine.len(), 0);
    }

    #[test]
    fn maintenance_is_localized_after_a_distant_event() {
        // A wide field of clusters, then one insert far away: the next answer
        // must re-sweep only the dirty neighborhood, not the whole grid.
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        let mut id = 0;
        for cluster in 0..40 {
            for j in 0..5 {
                let x = cluster as f64 * 100.0 + j as f64;
                engine
                    .apply(&Event::insert(id, x, 50.0, 1.0, id as f64))
                    .unwrap();
                id += 1;
            }
        }
        let first = engine.answer();
        assert!(first.stats.cells_swept > 0);
        let total = first.stats.cells_total;
        assert!(total >= 40, "expected one cell per cluster, got {total}");

        engine
            .apply(&Event::insert(id, 1_700.0, 50.0, 1.0, id as f64))
            .unwrap();
        let second = engine.answer();
        assert!(
            second.stats.cells_swept <= 2,
            "a single event must dirty at most two cells, swept {}",
            second.stats.cells_swept
        );
        assert_eq!(
            second.stats.cells_cached + second.stats.cells_swept + second.stats.cells_pruned,
            second.stats.cells_total
        );
    }

    #[test]
    fn pruned_cells_are_revisited_when_the_incumbent_falls() {
        // A heavy cluster dominates; a light cluster's cell gets pruned.
        // Deleting the heavy cluster must let the light one win.
        let query = Query::max_rs(size());
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size())).unwrap();
        for i in 0..10u64 {
            engine
                .apply(&Event::insert(
                    i,
                    500.0 + (i % 3) as f64,
                    50.0,
                    3.0,
                    i as f64,
                ))
                .unwrap();
        }
        for i in 10..13u64 {
            engine
                .apply(&Event::insert(
                    i,
                    100.0 + (i % 3) as f64,
                    50.0,
                    1.0,
                    i as f64,
                ))
                .unwrap();
        }
        assert_matches_batch(&mut engine, &query);
        for i in 0..10u64 {
            engine.apply(&Event::delete(i, 20.0 + i as f64)).unwrap();
        }
        assert_matches_batch(&mut engine, &query);
        assert_eq!(engine.answer().run.answer.best_weight(), 3.0);
    }

    #[test]
    fn apply_all_accumulates_outcomes() {
        let mut engine = StreamEngine::new(StreamConfig::max_rs(size()).with_window(2.0)).unwrap();
        let events = vec![
            Event::insert(1, 0.0, 0.0, 1.0, 0.0),
            Event::delete(99, 0.5), // unknown: ignored
            Event::tick(10.0),      // expires id 1
        ];
        let outcome = engine.apply_all(&events).unwrap();
        assert!(!outcome.applied);
        assert_eq!(outcome.expired, 1);
        assert!(engine.is_empty());
    }
}
