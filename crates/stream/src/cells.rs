//! Bookkeeping structures of the incremental maintenance loop: a total-order
//! key for finite floats, multisets of arrangement breakpoints with successor
//! queries, and the per-cell dirty/cached state.
//!
//! The engine keeps two global multisets — the x-edges and the event-y's of
//! every live transformed rectangle — so the winning sweep cell can be
//! *canonicalized* exactly like the external pipeline does (see
//! `maxrs_core::exact`, "Canonical max-regions"): the winning x-interval is
//! widened to the full arrangement cell via an x-edge successor query, and
//! the winning y-strip extends to the next event y.  Both queries are
//! `O(log n)` against these indexes instead of the `O(N/B)` scan the external
//! path pays.

use std::collections::BTreeSet;

use maxrs_core::FrontierMap;
use maxrs_geometry::Interval;

/// Total-order key for a finite, non-NaN `f64`: the usual sign-flip bit
/// trick, under which the integer order of keys equals the numeric order of
/// the floats (with `-0.0` ordered immediately below `+0.0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct FloatKey(u64);

impl FloatKey {
    pub(crate) fn new(x: f64) -> Self {
        debug_assert!(!x.is_nan(), "float keys must not be NaN");
        let bits = x.to_bits();
        FloatKey(if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        })
    }

    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

/// A multiset of finite floats with `O(log n)` insert/remove, minimum and
/// strict-successor queries.
///
/// Backed by a locality-aware [`FrontierMap`] keyed on the total-order bits:
/// the engine's breakpoint updates cluster around the rectangles it is
/// touching, so most probes hit the map's last-accessed leaf, and the
/// successor query walks a cursor instead of re-probing a `BTreeMap` range.
#[derive(Debug, Default)]
pub(crate) struct FloatMultiset {
    map: FrontierMap<u64, (f64, usize)>,
}

impl FloatMultiset {
    pub(crate) fn insert(&mut self, x: f64) {
        self.map
            .get_or_insert_with(FloatKey::new(x).raw(), || (x, 0))
            .1 += 1;
    }

    pub(crate) fn remove(&mut self, x: f64) {
        let key = FloatKey::new(x).raw();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.map.remove(&key);
            }
        } else {
            debug_assert!(false, "removed a value that was never inserted: {x}");
        }
    }

    /// The smallest stored value.
    pub(crate) fn min(&self) -> Option<f64> {
        self.map.first_key_value().map(|(_, &(x, _))| x)
    }

    /// The smallest stored value strictly greater than `x` (by `f64`
    /// comparison, so `-0.0` and `+0.0` count as equal).
    pub(crate) fn successor_after(&self, x: f64) -> Option<f64> {
        let mut cur = self.map.seek_gt(&FloatKey::new(x).raw());
        while let Some(c) = cur {
            let &(v, _) = c.value(&self.map);
            if v > x {
                return Some(v);
            }
            cur = c.advance(&self.map);
        }
        None
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.values().map(|&(_, n)| n).sum()
    }
}

/// The best tuple of one cell's plane sweep: the cell-local analogue of the
/// external pipeline's winning slab tuple, before canonical widening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CellCandidate {
    /// Maximum location-weight inside the cell.
    pub sum: f64,
    /// First sweep `y` at which the maximum is attained.
    pub y: f64,
    /// The winning (cell-clipped) elementary x-interval at that `y`.
    pub x: Interval,
}

/// Ordering key of a clean cell's candidate in the engine's best-candidate
/// index: sum *descending* (inverted float key), then `y` ascending, then
/// column ascending — exactly the tie-breaking the sweep's winner selection
/// uses, so the index's first entry *is* the best clean candidate.  (Weights
/// are normalized so candidate sums are never `-0.0`, keeping the bitwise
/// sum key consistent with numeric comparison.)
pub(crate) fn candidate_key(c: &CellCandidate, col: i64) -> (u64, u64, i64) {
    (!FloatKey::new(c.sum).raw(), FloatKey::new(c.y).raw(), col)
}

/// One grid column of the maintenance structure: the ids of the live objects
/// whose transformed rectangle overlaps the column with positive width, plus
/// the cached sweep candidate and its validity flag.
#[derive(Debug, Default)]
pub(crate) struct Cell {
    /// Member object ids (ordered, so sweep inputs are deterministic).
    pub ids: BTreeSet<u64>,
    /// `true` when membership changed since `cached` was computed; a dirty
    /// cell's cache is never consulted.
    pub dirty: bool,
    /// The cell's sweep candidate as of the last re-sweep (`None` when the
    /// last sweep produced no tuples).
    pub cached: Option<CellCandidate>,
    /// Upper bound on the cell's maximum location-weight, maintained in
    /// `O(1)` per event: inserts add their weight, removals leave it
    /// untouched (a stale bound is still an upper bound, and skipping the
    /// subtraction avoids any float-cancellation drift *below* the true
    /// sum), and every re-sweep refreshes it to the exact member total.
    /// This keeps the per-answer prune check `O(1)` per dirty cell even for
    /// cells that stay pruned across many answers.
    pub bound: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_key_orders_like_f64() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.75,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                FloatKey::new(w[0]) < FloatKey::new(w[1]) || w[0] == w[1],
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // -0.0 and +0.0 are distinct keys but equal floats.
        assert!(FloatKey::new(-0.0) < FloatKey::new(0.0));
    }

    #[test]
    fn multiset_counts_and_successors() {
        let mut set = FloatMultiset::default();
        for x in [1.0, 2.0, 2.0, 5.0] {
            set.insert(x);
        }
        assert_eq!(set.len(), 4);
        assert_eq!(set.min(), Some(1.0));
        assert_eq!(set.successor_after(1.0), Some(2.0));
        assert_eq!(set.successor_after(2.0), Some(5.0));
        assert_eq!(set.successor_after(5.0), None);
        assert_eq!(set.successor_after(f64::NEG_INFINITY), Some(1.0));
        set.remove(2.0);
        assert_eq!(set.successor_after(1.0), Some(2.0));
        set.remove(2.0);
        assert_eq!(set.successor_after(1.0), Some(5.0));
        set.remove(1.0);
        set.remove(5.0);
        assert_eq!(set.min(), None);
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn successor_skips_signed_zero_alias() {
        let mut set = FloatMultiset::default();
        set.insert(0.0);
        set.insert(1.0);
        // Strictly greater than -0.0 must skip +0.0 (equal as floats).
        assert_eq!(set.successor_after(-0.0), Some(1.0));
        assert_eq!(set.min(), Some(0.0));
    }
}
