//! # maxrs-stream — incremental MaxRS over dynamic data
//!
//! The core crate answers MaxRS queries over *static* object files; this
//! crate opens the dynamic-data scenario family: feeds of inserts and
//! deletes, moving objects, decaying sliding windows.  A [`StreamEngine`]
//! ingests timestamped [`Event`]s and maintains the current MaxRS (or top-k)
//! answer **incrementally** — every event dirties `O(1)` grid cells, and an
//! [`answer`](StreamEngine::answer) call re-runs the existing plane-sweep /
//! segment-tree machinery only over dirty cells whose weight bound can still
//! beat the incumbent, instead of recomputing the world.
//!
//! Answers are **bit-identical** to a from-scratch
//! [`MaxRsEngine::run`](maxrs_core::MaxRsEngine::run) over the surviving
//! objects (for weights with exactly representable sums): the winning cell
//! candidate is canonicalized with the same "canonical max-regions" rule the
//! external pipeline uses, so going incremental can never change an answer.
//! See [`engine`] for the mechanism and invariants.
//!
//! ```
//! use maxrs_stream::{Event, StreamConfig, StreamEngine};
//! use maxrs_core::{MaxRsEngine, Query};
//! use maxrs_geometry::RectSize;
//!
//! let mut stream = StreamEngine::new(StreamConfig::max_rs(RectSize::square(4.0))).unwrap();
//! stream.apply(&Event::insert(1, 10.0, 10.0, 2.0, 0.0)).unwrap();
//! stream.apply(&Event::insert(2, 11.0, 11.0, 1.0, 1.0)).unwrap();
//! stream.apply(&Event::insert(3, 50.0, 50.0, 1.0, 2.0)).unwrap();
//! stream.apply(&Event::delete(3, 3.0)).unwrap();
//!
//! // The incremental answer equals a batch run over the survivors…
//! let incremental = stream.answer();
//! let batch = MaxRsEngine::new()
//!     .run(&stream.survivors(), &Query::max_rs(RectSize::square(4.0)))
//!     .unwrap();
//! assert_eq!(incremental.run.answer, batch.answer);
//! assert_eq!(incremental.run.answer.best_weight(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod config;
pub mod engine;
mod error;

pub use config::StreamConfig;
pub use engine::{MaintenanceStats, StreamAnswer, StreamEngine};
pub use error::{Result, StreamError};
// The event model and its application semantics live in `maxrs_core::events`,
// shared with `maxrs_core::DeltaDataset` so the two dynamic engines cannot
// drift apart; re-exported here for source compatibility.
pub use maxrs_core::{Event, EventOutcome};
