//! Error type of the streaming subsystem.

use maxrs_core::CoreError;

/// Errors raised by the [`StreamEngine`](crate::StreamEngine).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The configured query variant has no incremental maintenance path yet
    /// (only MaxRS and top-k are supported).
    Unsupported(String),
    /// A configuration or event parameter is invalid (non-finite coordinate,
    /// negative weight, non-positive window, …).
    InvalidParameter(String),
    /// An insert reused the id of an object that is still alive.
    DuplicateId(u64),
    /// An error bubbled up from the core algorithm layer.
    Core(CoreError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Unsupported(msg) => write!(f, "unsupported stream query: {msg}"),
            StreamError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            StreamError::DuplicateId(id) => {
                write!(f, "insert reuses id {id} of a live object")
            }
            StreamError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<maxrs_core::EventError> for StreamError {
    fn from(e: maxrs_core::EventError) -> Self {
        // Preserve the historical stream-level variants (and their Display
        // text) rather than wrapping in `Core`.
        match e {
            maxrs_core::EventError::InvalidParameter(msg) => StreamError::InvalidParameter(msg),
            maxrs_core::EventError::DuplicateId(id) => StreamError::DuplicateId(id),
        }
    }
}

/// Result alias for the streaming layer.
pub type Result<T> = std::result::Result<T, StreamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = StreamError::DuplicateId(7);
        assert!(e.to_string().contains('7'));
        let e = StreamError::Unsupported("min-rs".into());
        assert!(e.to_string().contains("min-rs"));
        let e: StreamError = CoreError::InvalidParameter("w".into()).into();
        assert!(matches!(e, StreamError::Core(_)));
        // Event errors from the shared live-set map onto the stream-level
        // variants, not onto `Core`.
        let dup: StreamError = maxrs_core::EventError::DuplicateId(9).into();
        assert_eq!(dup, StreamError::DuplicateId(9));
        let bad: StreamError = maxrs_core::EventError::InvalidParameter("bad".into()).into();
        assert_eq!(bad, StreamError::InvalidParameter("bad".into()));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(StreamError::DuplicateId(1).source().is_none());
    }
}
