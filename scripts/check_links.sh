#!/usr/bin/env bash
# Checks that every relative markdown link in README.md and docs/*.md points
# at an existing file (or directory), so the docs cannot rot silently.
# External links (http/https) and pure anchors (#...) are skipped; an anchor
# suffix on a relative link is stripped before the existence check.
#
# Usage: scripts/check_links.sh   (any working directory; resolves the repo
# root from its own location)
set -u
cd "$(dirname "$0")/.." || exit 1

fail=0
checked=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    checked=$((checked + 1))
    dir=$(dirname "$doc")
    # Pull out every (target) of a markdown [text](target) link.  The grep
    # intentionally ignores code spans' parentheses by requiring the ]( form.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN LINK: $doc -> $target" >&2
            fail=1
        fi
    done < <(grep -o '\][(][^)]*[)]' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$checked" -eq 0 ]; then
    echo "link check found no documents to check — misconfigured?" >&2
    exit 1
fi
if [ "$fail" -ne 0 ]; then
    echo "link check failed" >&2
    exit 1
fi
echo "link check passed ($checked documents)"
