//! # maxrs — maximizing range sum in spatial databases
//!
//! Facade crate re-exporting the MaxRS workspace: a Rust reproduction of
//! *"A Scalable Algorithm for Maximizing Range Sum in Spatial Databases"*
//! (Choi, Chung, Tao; PVLDB 5(11), 2012).
//!
//! * [`geometry`] — points, rectangles, circles, weighted objects.
//! * [`em`] — the external-memory substrate (simulated disk, buffer pool, I/O
//!   accounting, external sort).
//! * [`core`] — the algorithms: ExactMaxRS, ApproxMaxCRS, the in-memory plane
//!   sweep and the exact MaxCRS reference; plus [`PreparedDataset`] for
//!   sort-once repeated querying, [`DeltaDataset`] for streaming updates
//!   over the external path (delta-main + compaction), and
//!   [`ShardedDataset`] for x-partitioned parallel prepare with
//!   shard-routed, bit-identical queries.  The sweep-front structures the
//!   hot paths run on — the locality-aware [`FrontierMap`] and the
//!   zero-alloc [`SweepScratch`] arena — are re-exported here too.
//! * [`stream`] — incremental MaxRS over dynamic data: the sliding-window
//!   event engine ([`StreamEngine`]) maintaining answers under inserts,
//!   deletes and window expiry.
//! * [`datagen`] — the synthetic and real-surrogate dataset generators used by
//!   the experiments, including reproducible event streams.
//! * [`serve`] — the concurrent serving layer: [`DatasetRegistry`] caching
//!   prepared datasets under a memory budget, and [`MaxRsServer`] micro-
//!   batching concurrent clients' queries into shared sweep passes.
//! * [`cluster`] — multi-node shard serving: [`ShardServer`]s hosting the
//!   shards of one x-partition behind a pluggable transport (in-process or
//!   real TCP), and a [`ClusterCoordinator`] fanning sub-queries out and
//!   merging partial results bit-identically, with timeouts, retries and
//!   per-server health tracking.
//! * [`baselines`] — the externalized plane-sweep baselines (Naïve and
//!   aSB-tree) the paper compares against.
//!
//! The most common entry points are re-exported at the crate root.  The
//! [`MaxRsEngine`] facade picks the execution strategy (in-memory sweep,
//! sequential external sweep, or the parallel slab stage) per query:
//!
//! ```
//! use maxrs::{MaxRsEngine, RectSize, WeightedPoint};
//!
//! let stores = vec![
//!     WeightedPoint::unit(2.0, 3.0),
//!     WeightedPoint::unit(2.5, 3.5),
//!     WeightedPoint::unit(9.0, 9.0),
//! ];
//! let run = MaxRsEngine::new().solve(&stores, RectSize::square(2.0)).unwrap();
//! assert_eq!(run.result.total_weight, 2.0);
//! ```
//!
//! The individual algorithms remain directly callable:
//!
//! ```
//! use maxrs::{max_rs_in_memory, RectSize, WeightedPoint};
//!
//! let stores = vec![
//!     WeightedPoint::unit(2.0, 3.0),
//!     WeightedPoint::unit(2.5, 3.5),
//!     WeightedPoint::unit(9.0, 9.0),
//! ];
//! let best = max_rs_in_memory(&stores, RectSize::square(2.0));
//! assert_eq!(best.total_weight, 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use maxrs_baselines as baselines;
pub use maxrs_cluster as cluster;
pub use maxrs_core as core;
pub use maxrs_datagen as datagen;
pub use maxrs_em as em;
pub use maxrs_geometry as geometry;
pub use maxrs_serve as serve;
pub use maxrs_stream as stream;

pub use maxrs_cluster::{
    ClusterConfig, ClusterCoordinator, ClusterError, InProcessTransport, ShardServer, TcpTransport,
    Transport,
};
pub use maxrs_core::{
    approx_max_crs, approx_max_crs_from_objects, approx_max_crs_in_memory, exact_max_crs_in_memory,
    exact_max_rs, exact_max_rs_from_objects, load_objects, max_k_rs_in_memory, max_rs_in_memory,
    min_rs_in_memory, ApproxMaxCrsOptions, CompactionPolicy, CompactionReport, DeltaDataset,
    DeltaOptions, EngineError, EngineOptions, EngineRun, ExactMaxRsOptions, ExecutionStrategy,
    FrontierCursor, FrontierMap, InputOrder, LiveSet, MaxCrsResult, MaxRsEngine, MaxRsResult,
    PreparedDataset, Query, QueryAnswer, QueryBatch, QueryRun, ShardLayout, ShardedDataset,
    SweepPass, SweepScratch,
};
pub use maxrs_em::{BlockDevice, EmConfig, EmContext, FsDisk, IoSnapshot, SimDisk, StorageBackend};
pub use maxrs_geometry::{Circle, Interval, Point, Rect, RectSize, WeightedPoint};
pub use maxrs_serve::{DatasetRegistry, MaxRsServer, OverloadPolicy, ServeConfig, ServeError};
pub use maxrs_stream::{Event, StreamConfig, StreamEngine};
