//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small rand-0.8 API slice the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] over integer and float ranges, and
//! [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for dataset generation.  Streams are
//! *not* bit-compatible with the real `rand` crate; all consumers in this
//! workspace only require determinism given a seed, not a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range requires a non-empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is < 2^-64,
                // irrelevant for dataset generation.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`StandardSample`] type (`f64` is uniform in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (public-domain
    /// construction by Blackman and Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let r = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&r));
            let i = rng.gen_range(1.0..=9.0);
            assert!((1.0..=9.0).contains(&i));
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-2i32..3);
            assert!((-2..3).contains(&v));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
