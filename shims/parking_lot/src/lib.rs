//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The build environment of this repository has no access to crates.io, so the
//! tiny API slice the workspace relies on — [`Mutex`] and [`RwLock`] with
//! non-poisoning guards — is provided here on top of `std::sync`.  Poisoning
//! is translated into lock acquisition that ignores the poison flag, matching
//! parking_lot's semantics (a panicking thread does not wedge the lock for
//! everyone else).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API: `lock()` returns
/// the guard directly (no `Result`) and panicking while holding the lock does
/// not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value without locking
    /// (possible because `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API: `read()`/`write()`
/// return guards directly and the lock never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot-style mutex must still be usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
