//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The build environment of this repository has no access to crates.io, so the
//! tiny API slice the workspace relies on — [`Mutex`] and [`RwLock`] with
//! non-poisoning guards, plus the matching [`Condvar`] — is provided here on
//! top of `std::sync`.  Poisoning is translated into lock acquisition that
//! ignores the poison flag, matching parking_lot's semantics (a panicking
//! thread does not wedge the lock for everyone else).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API: `lock()` returns
/// the guard directly (no `Result`) and panicking while holding the lock does
/// not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].  Wraps the std guard in an `Option`
/// so [`Condvar::wait`] can hand it through std's by-value wait while keeping
/// parking_lot's by-reference signature (the slot is only ever empty *during*
/// a wait, when the caller cannot observe it).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Returns a mutable reference to the protected value without locking
    /// (possible because `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable with the `parking_lot::Condvar` API: `wait` takes the
/// guard by `&mut` (instead of std's by-value round trip) and spurious
/// wake-ups are possible, exactly as with both upstream implementations.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified, then
    /// reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one thread blocked on this condition variable, if any.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API: `read()`/`write()`
/// return guards directly and the lock never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot-style mutex must still be usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
