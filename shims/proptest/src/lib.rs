//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements the
//! API slice the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `arg in strategy` parameter bindings,
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for numeric ranges
//!   and tuples of strategies,
//! * [`any`] for unbiased primitive values,
//! * `prop::collection::vec` for variable-length vectors,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures are reproducible across runs.  There is **no
//! shrinking**: a failing case panics with the assertion message immediately.
//! That trades debugging convenience for zero dependencies, which is the
//! right trade for an offline CI environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Everything a property test usually imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test's name, so every test owns a
    /// stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)` (`bound` must be positive).
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring proptest's `prop_map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unbiased value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`, mirroring `proptest::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Sub-modules mirroring the `proptest::prop` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// The strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A vector of values from `elem`, with a length drawn uniformly from
        /// `len` (half-open, like proptest's size ranges).
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Asserts a condition inside a property test (no shrinking: panics with the
/// message immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5i32..7, y in 0.5f64..2.5, n in 1usize..4) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((any::<u32>(), 0i32..3), 0..10)) {
            prop_assert!(v.len() < 10);
            for (_, small) in v {
                prop_assert!((0..3).contains(&small));
            }
        }

        #[test]
        fn prop_map_applies(d in (1u32..5).prop_map(|v| v * 2)) {
            prop_assert!(d % 2 == 0);
            prop_assert!((2..10).contains(&d));
        }
    }
}
