//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, providing the [`Normal`] distribution (the only one this workspace
//! uses) over the local `rand` shim via the Box–Muller transform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, StandardSample};

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; fails if `std_dev` is negative or not
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal deviate.  The
        // second deviate is discarded to keep the distribution stateless.
        let mut u1 = f64::sample_standard(rng);
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = f64::sample_standard(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn moments_are_plausible() {
        let normal = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std = {}", var.sqrt());
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let normal = Normal::new(4.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 4.0);
        }
    }
}
