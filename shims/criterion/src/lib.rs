//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements the
//! API slice the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`] — with a
//! deliberately simple measurement protocol: one warm-up run, then
//! `sample_size` timed runs, reporting min / mean / max wall-clock time per
//! iteration.  There is no statistical analysis, HTML report or regression
//! store; the numbers are for quick comparisons (e.g. sequential vs. parallel
//! ExactMaxRS), not micro-benchmark rigor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function, mirroring
/// `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let samples = self.default_sample_size;
        run_one(&id.into(), samples, |b| f(b));
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with an input value, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Finishes the group (provided for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Conversion of labels accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label()
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value (e.g. the input size).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    planned: usize,
}

impl Bencher {
    /// Times `routine` once per sample, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run (not recorded).
        black_box(routine());
        for _ in 0..self.planned {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        planned: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    let mut out = String::new();
    if ns < 1_000 {
        let _ = write!(out, "{ns} ns");
    } else if ns < 1_000_000 {
        let _ = write!(out, "{:.2} µs", ns as f64 / 1e3);
    } else if ns < 1_000_000_000 {
        let _ = write!(out, "{:.2} ms", ns as f64 / 1e6);
    } else {
        let _ = write!(out, "{:.3} s", ns as f64 / 1e9);
    }
    out
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; none are
            // relevant to this minimal harness.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_id_labels() {
        let id = BenchmarkId::new("sweep", 1000);
        assert_eq!(id.label(), "sweep/1000");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &2, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
